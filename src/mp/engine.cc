#include "mp/engine.h"

#include <cassert>
#include <stdexcept>
#include <string>

namespace dsmem::mp {

using trace::Op;
using trace::TraceInst;

Engine::Engine(const EngineConfig &config)
    : config_(config),
      arena_(config.arena_slots),
      memory_(config.num_procs, config.cache, config.mem),
      sync_(config.num_procs, config.mem)
{
    if (config.traced_proc >= config.num_procs)
        throw std::invalid_argument("traced_proc out of range");
    if (config.mem.dram.enabled() && config.legacy_engine)
        throw std::invalid_argument(
            "the DRAM model requires the fast engine "
            "(legacy_engine is the seed-faithful reference)");
    threads_.resize(config.num_procs);
    for (uint32_t p = 0; p < config.num_procs; ++p)
        threads_[p].ctx = std::make_unique<ThreadContext>(this, p);
    ready_keys_.fill(kNoKey);
    // Fast capture goes through the chunked recorder; the contiguous
    // trace_ is assembled (with one exact reserve) when run() ends.
    // The legacy engine appends to trace_ directly, as the seed did.
    if (config.legacy_engine)
        trace_.reserve(config.trace_reserve);
}

BarrierId
Engine::createBarrier(uint32_t n)
{
    return sync_.createBarrier(n == 0 ? config_.num_procs : n);
}

ThreadContext &
Engine::context(uint32_t proc)
{
    return *threads_.at(proc).ctx;
}

void
Engine::addThread(uint32_t proc, Task task)
{
    Thread &thread = threads_.at(proc);
    if (thread.spawned)
        throw std::logic_error("thread already attached to processor");
    if (!task.valid())
        throw std::invalid_argument("invalid task");
    thread.task = std::move(task);
    thread.spawned = true;
    thread.state = ThreadState::READY;
    enqueue(proc, 0);
}

void
Engine::applyWakes(const std::vector<SyncWake> &wakes, Op op)
{
    for (const SyncWake &wake : wakes) {
        Thread &thread = threads_.at(wake.proc);
        assert(thread.state == ThreadState::PARKED);
        ThreadContext &ctx = *thread.ctx;

        TraceInst inst = trace::makeSync(op, ctx.pending_.sync_id);
        inst.latency = wake.transfer;
        inst.aux = wake.wait;
        ctx.recordTimed(inst);

        ThreadStats &stats = ctx.stats_;
        switch (op) {
          case Op::LOCK:
            ++stats.locks;
            break;
          case Op::BARRIER:
            ++stats.barriers;
            break;
          case Op::WAIT_EVENT:
            ++stats.wait_events;
            break;
          default:
            assert(false && "unexpected wake op");
        }
        stats.sync_wait_cycles += wake.wait;
        stats.sync_transfer_cycles += wake.transfer;

        ctx.cycle_ = wake.time;
        ctx.pending_.kind = ThreadContext::PendingKind::NONE;
        thread.state = ThreadState::READY;
        enqueue(wake.proc, ctx.cycle_);
    }
}

void
Engine::deliverDramCompletions(memsys::DramModel &dram)
{
    std::vector<memsys::DramModel::Completion> &comps =
        dram.drainCompletions();
    for (const memsys::DramModel::Completion &c : comps) {
        if (c.is_read) {
            // Tag == requesting processor: blocking reads allow one
            // outstanding read per thread, parked since it issued.
            Thread &thread = threads_.at(c.proc);
            assert(thread.state == ThreadState::PARKED);
            ThreadContext &ctx = *thread.ctx;
            ThreadContext::PendingOp &op = ctx.pending_;
            assert(op.kind == ThreadContext::PendingKind::LOAD);

            if (ctx.rec_) [[unlikely]] {
                TraceInst inst;
                inst.op = Op::LOAD;
                inst.addr = op.addr;
                inst.latency = static_cast<uint32_t>(c.latency);
                inst.num_srcs = op.num_deps;
                for (int i = 0; i < op.num_deps; ++i)
                    inst.src[i] = op.deps[i];
                ctx.rec_->append(inst);
            }
            ctx.cycle_ = c.finish;
            op.kind = ThreadContext::PendingKind::NONE;
            thread.state = ThreadState::READY;
            enqueue(c.proc, ctx.cycle_);
        } else if (c.tag != memsys::DramModel::kNoTag) {
            // Traced-processor store: patch the provisional latency
            // annotation with the cycles the write really took.
            recorder_.patchLatency(static_cast<size_t>(c.tag),
                                   static_cast<uint32_t>(c.latency));
        }
    }
    comps.clear();
}

void
Engine::execMemOp(ThreadContext &ctx)
{
    ThreadContext::PendingOp &op = ctx.pending_;
    ThreadStats &stats = ctx.stats_;
    uint64_t now = ctx.cycle_;
    uint32_t proc = ctx.proc_;
    const bool legacy = config_.legacy_engine;

    auto build_mem_inst = [&](Op mem_op, uint32_t latency) {
        TraceInst inst;
        inst.op = mem_op;
        inst.addr = op.addr;
        inst.latency = latency;
        inst.num_srcs = op.num_deps;
        for (int i = 0; i < op.num_deps; ++i)
            inst.src[i] = op.deps[i];
        return inst;
    };

    if (op.kind == ThreadContext::PendingKind::LOAD) {
        memsys::AccessResult res = legacy
            ? memory_.readLegacy(proc, op.addr, now)
            : memory_.read(proc, op.addr, now);
        Val out_val;
        if (op.is_float) {
            out_val.f = arena_.loadFloat(op.addr);
            out_val.i = Val::safeToInt(out_val.f);
        } else {
            out_val.i = arena_.loadInt(op.addr);
            out_val.f = static_cast<double>(out_val.i);
        }
        if (res.deferred) [[unlikely]] {
            // The fetch is queued at the DRAM. The value (today's
            // semantics: arena state at issue) travels with the
            // parked thread; deliverDramCompletions records the load
            // with its real latency and resumes at the completion
            // cycle. pending_ keeps the addr/deps for that record.
            out_val.inst = ctx.next_inst_++;
            ++stats.instructions;
            ++stats.reads;
            ++stats.read_misses;
            op.result = out_val;
            threads_[proc].state = ThreadState::PARKED;
            return;
        }
        if (legacy) [[unlikely]] {
            out_val.inst = ctx.recordTimed(build_mem_inst(Op::LOAD,
                                                          res.latency));
        } else {
            // Untraced processors (15 of 16) skip the record build.
            out_val.inst = ctx.next_inst_++;
            ++stats.instructions;
            if (ctx.rec_) [[unlikely]]
                ctx.rec_->append(build_mem_inst(Op::LOAD, res.latency));
        }
        ++stats.reads;
        if (res.isMiss())
            ++stats.read_misses;
        // Blocking read: the in-order processor stalls for the value.
        ctx.cycle_ += res.latency;
        op.result = out_val;
    } else {
        // Deferred write misses patch the annotation at the record
        // the store is about to occupy (traced processor only).
        uint64_t tag = ctx.rec_
            ? static_cast<uint64_t>(ctx.next_inst_)
            : memsys::DramModel::kNoTag;
        memsys::AccessResult res = legacy
            ? memory_.writeLegacy(proc, op.addr, now)
            : memory_.write(proc, op.addr, now, tag);
        if (op.is_float)
            arena_.storeFloat(op.addr, op.data.f);
        else
            arena_.storeInt(op.addr, op.data.i);
        if (legacy) [[unlikely]] {
            ctx.recordTimed(build_mem_inst(Op::STORE, res.latency));
        } else {
            ++ctx.next_inst_;
            ++stats.instructions;
            if (ctx.rec_) [[unlikely]]
                ctx.rec_->append(build_mem_inst(Op::STORE, res.latency));
        }
        ++stats.writes;
        if (res.isWriteMiss())
            ++stats.write_misses;
        // Buffered write under RC: one cycle to the processor.
        ctx.cycle_ += 1;
        op.result = Val{};
    }
}

void
Engine::processPending(Thread &thread)
{
    ThreadContext &ctx = *thread.ctx;
    ThreadContext::PendingOp &op = ctx.pending_;
    ThreadStats &stats = ctx.stats_;
    uint64_t now = ctx.cycle_;
    uint32_t proc = ctx.proc_;

    auto record_acquire = [&](Op sync_op, const SyncOutcome &out) {
        TraceInst inst = trace::makeSync(sync_op, op.sync_id);
        inst.latency = out.transfer;
        inst.aux = out.wait;
        ctx.recordTimed(inst);
        stats.sync_wait_cycles += out.wait;
        stats.sync_transfer_cycles += out.transfer;
        ctx.cycle_ += out.wait + out.transfer;
    };

    auto record_release = [&](Op sync_op, const SyncOutcome &out) {
        TraceInst inst = trace::makeSync(sync_op, op.sync_id);
        inst.latency = out.transfer;
        inst.aux = 0;
        ctx.recordTimed(inst);
        // Releases retire through the write buffer under release
        // consistency: the processor continues after one cycle.
        ctx.cycle_ += 1;
    };

    switch (op.kind) {
      case ThreadContext::PendingKind::LOAD:
      case ThreadContext::PendingKind::STORE:
        execMemOp(ctx);
        if (thread.state == ThreadState::PARKED)
            return; // Deferred read: parked on its DRAM completion.
        break;

      case ThreadContext::PendingKind::LOCK: {
        SyncOutcome out = sync_.lockAcquire(op.sync_id, proc, now);
        if (!out.granted) {
            thread.state = ThreadState::PARKED;
            return;
        }
        ++stats.locks;
        record_acquire(Op::LOCK, out);
        break;
      }

      case ThreadContext::PendingKind::UNLOCK: {
        SyncOutcome out = sync_.lockRelease(op.sync_id, proc, now);
        ++stats.unlocks;
        record_release(Op::UNLOCK, out);
        applyWakes(out.wakes, Op::LOCK);
        break;
      }

      case ThreadContext::PendingKind::BARRIER: {
        SyncOutcome out = sync_.barrierArrive(op.sync_id, proc, now);
        if (!out.granted) {
            thread.state = ThreadState::PARKED;
            return;
        }
        ++stats.barriers;
        record_acquire(Op::BARRIER, out);
        applyWakes(out.wakes, Op::BARRIER);
        break;
      }

      case ThreadContext::PendingKind::WAIT_EVENT: {
        SyncOutcome out = sync_.eventWait(op.sync_id, proc, now);
        if (!out.granted) {
            thread.state = ThreadState::PARKED;
            return;
        }
        ++stats.wait_events;
        record_acquire(Op::WAIT_EVENT, out);
        break;
      }

      case ThreadContext::PendingKind::SET_EVENT: {
        SyncOutcome out = sync_.eventSet(op.sync_id, proc, now);
        ++stats.set_events;
        record_release(Op::SET_EVENT, out);
        applyWakes(out.wakes, Op::WAIT_EVENT);
        break;
      }

      case ThreadContext::PendingKind::NONE:
        throw std::logic_error("processPending with no pending op");
    }

    op.kind = ThreadContext::PendingKind::NONE;
    thread.state = ThreadState::READY;
}

void
Engine::run()
{
    if (ran_)
        throw std::logic_error("Engine::run may only be called once");
    ran_ = true;

    size_t spawned = 0;
    for (const Thread &t : threads_)
        if (t.spawned)
            ++spawned;
    if (spawned == 0)
        throw std::logic_error("Engine::run with no threads attached");

    if (config_.legacy_engine)
        runLoopLegacy();
    else
        runLoopFast();

    // Runs that used the DRAM model fold its accounting into the
    // cache statistics before anyone reads them.
    memory_.finalizeDramStats();

    // Assemble the contiguous trace the timing phase consumes from
    // the capture chunks (trace()/takeTrace() are unchanged).
    recorder_.drainInto(trace_);

    if (done_count_ != spawned) {
        throw std::runtime_error(
            "deadlock: " + std::to_string(spawned - done_count_) +
            " thread(s) blocked (" + std::to_string(sync_.parkedCount()) +
            " parked on synchronization)");
    }
}

void
Engine::runLoopFast()
{
    const uint32_t num_procs = config_.num_procs;
    memsys::DramModel *dram = memory_.dram();
    for (;;) {
        if (ready_count_ == 0) {
            if (dram == nullptr || dram->idle())
                break;
            // Every thread is parked (or done) and requests are in
            // flight: drain the DRAM; read completions wake their
            // parked threads.
            dram->advanceTo(memsys::DramModel::kNever);
            deliverDramCompletions(*dram);
            if (ready_count_ == 0)
                break; // Only write completions: nothing to resume.
            continue;
        }

        // Extract the (cycle, proc) minimum by scanning the per-proc
        // key slots; kNoKey slots lose every comparison. A slot is set
        // iff its thread is READY or HAS_PENDING, so no staleness
        // check is needed.
        uint64_t best = kNoKey;
        for (uint32_t p = 0; p < num_procs; ++p) {
            uint64_t key = ready_keys_[p];
            if (key < best)
                best = key;
        }

        if (dram != nullptr) [[unlikely]] {
            // Co-simulation invariant: every DRAM dispatch instant
            // strictly before the next thread event is decided now,
            // when all arrivals up to that instant are known (engine
            // time is monotonic) and none after it can interfere.
            // Instants >= the event wait: that event may enqueue an
            // arrival the scheduler is entitled to see.
            uint64_t next_cycle = best >> kProcBits;
            if (dram->nextDispatchCycle() < next_cycle) {
                dram->advanceTo(next_cycle - 1);
                deliverDramCompletions(*dram);
                continue; // A wake may now precede the old minimum.
            }
        }

        uint32_t proc = static_cast<uint32_t>(best & kProcMask);
        ready_keys_[proc] = kNoKey;
        --ready_count_;
        Thread &thread = threads_[proc];

        if (thread.state == ThreadState::HAS_PENDING) {
            // Memory operations dominate the event stream; dispatch
            // them straight to execMemOp. processPending does exactly
            // this plus the state transitions for LOAD/STORE, so the
            // event order and results are unchanged.
            ThreadContext &ctx = *thread.ctx;
            if (ctx.pending_.kind == ThreadContext::PendingKind::LOAD ||
                ctx.pending_.kind == ThreadContext::PendingKind::STORE) {
                execMemOp(ctx);
                if (thread.state == ThreadState::PARKED) [[unlikely]]
                    continue; // Blocking read parked on the DRAM.
                ctx.pending_.kind = ThreadContext::PendingKind::NONE;
                thread.state = ThreadState::READY;
            } else {
                processPending(thread);
                if (thread.state == ThreadState::PARKED)
                    continue;
            }
        }

        // Resume the innermost suspended coroutine (a SubTask helper
        // or the top-level body itself).
        if (thread.ctx->resume_handle_) {
            std::coroutine_handle<> h = thread.ctx->resume_handle_;
            thread.ctx->resume_handle_ = nullptr;
            h.resume();
        } else {
            thread.task.resume();
        }
        if (thread.task.done()) {
            thread.task.rethrowIfFailed();
            thread.state = ThreadState::DONE;
            ++done_count_;
        }
        // Otherwise the coroutine suspended on its next operation and
        // onSuspend() already re-enqueued it.
    }
}

void
Engine::runLoopLegacy()
{
    while (!queue_.empty()) {
        QueueEntry entry = queue_.top();
        queue_.pop();
        Thread &thread = threads_[entry.proc];
        if (thread.state == ThreadState::DONE ||
            thread.state == ThreadState::PARKED) {
            continue; // Stale entry (defensive; should not occur).
        }

        if (thread.state == ThreadState::HAS_PENDING) {
            processPending(thread);
            if (thread.state == ThreadState::PARKED)
                continue;
        }

        if (thread.ctx->resume_handle_) {
            std::coroutine_handle<> h = thread.ctx->resume_handle_;
            thread.ctx->resume_handle_ = nullptr;
            h.resume();
        } else {
            thread.task.resume();
        }
        if (thread.task.done()) {
            thread.task.rethrowIfFailed();
            thread.state = ThreadState::DONE;
            ++done_count_;
        }
    }
}

uint64_t
Engine::completionCycle(uint32_t proc) const
{
    return threads_.at(proc).ctx->cycle();
}

const ThreadStats &
Engine::threadStats(uint32_t proc) const
{
    return threads_.at(proc).ctx->threadStats();
}

} // namespace dsmem::mp
