#include "mp/thread_context.h"

#include "mp/engine.h"

namespace dsmem::mp {

using trace::InstIndex;
using trace::TraceInst;

ThreadContext::ThreadContext(Engine *engine, uint32_t proc)
    : engine_(engine),
      rec_(proc == engine->config().traced_proc ? &engine->recorder_
                                                : nullptr),
      proc_(proc),
      legacy_(engine->config().legacy_engine)
{}

uint32_t
ThreadContext::numProcs() const
{
    return engine_->config().num_procs;
}

Arena &
ThreadContext::arena()
{
    return engine_->arena();
}

InstIndex
ThreadContext::emitLegacy(const TraceInst &inst)
{
    InstIndex idx = next_inst_++;
    ++stats_.instructions;
    cycle_ += 1;
    if (proc_ == engine_->config().traced_proc)
        engine_->trace_.append(inst);
    return idx;
}

InstIndex
ThreadContext::recordTimed(const TraceInst &inst)
{
    InstIndex idx = next_inst_++;
    if (!isSync(inst.op))
        ++stats_.instructions;
    if (legacy_) {
        // Seed path: plain append to the contiguous capture vector.
        if (proc_ == engine_->config().traced_proc)
            engine_->trace_.append(inst);
    } else if (rec_) {
        rec_->append(inst);
    }
    return idx;
}

// ---------------------------------------------------------------------
// Memory and synchronization awaitables
// ---------------------------------------------------------------------

void
ThreadContext::Awaiter::await_suspend(std::coroutine_handle<> handle) noexcept
{
    ctx->resume_handle_ = handle;
    ctx->engine_->onSuspend(ctx->proc_);
}

ThreadContext::Awaiter
ThreadContext::lock(LockId lock)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::LOCK;
    pending_.sync_id = lock;
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::unlock(LockId lock)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::UNLOCK;
    pending_.sync_id = lock;
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::barrier(BarrierId barrier)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::BARRIER;
    pending_.sync_id = barrier;
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::waitEvent(EventId event)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::WAIT_EVENT;
    pending_.sync_id = event;
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::setEvent(EventId event)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::SET_EVENT;
    pending_.sync_id = event;
    return Awaiter{this};
}

} // namespace dsmem::mp
