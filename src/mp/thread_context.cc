#include "mp/thread_context.h"

#include <cassert>
#include <cmath>

#include "mp/engine.h"

namespace dsmem::mp {

using trace::InstIndex;
using trace::kNoSrc;
using trace::Op;
using trace::TraceInst;

ThreadContext::ThreadContext(Engine *engine, uint32_t proc)
    : engine_(engine), proc_(proc)
{}

uint32_t
ThreadContext::numProcs() const
{
    return engine_->config().num_procs;
}

Arena &
ThreadContext::arena()
{
    return engine_->arena();
}

InstIndex
ThreadContext::recordSimple(const TraceInst &inst)
{
    InstIndex idx = next_inst_++;
    ++stats_.instructions;
    cycle_ += 1;
    if (proc_ == engine_->config().traced_proc)
        engine_->trace_.append(inst);
    return idx;
}

InstIndex
ThreadContext::recordTimed(const TraceInst &inst)
{
    InstIndex idx = next_inst_++;
    if (!isSync(inst.op))
        ++stats_.instructions;
    if (proc_ == engine_->config().traced_proc)
        engine_->trace_.append(inst);
    return idx;
}

Val
ThreadContext::intBinary(Op unit, Val a, Val b, int64_t result)
{
    TraceInst inst = trace::makeCompute(unit, a.inst, b.inst);
    InstIndex idx = recordSimple(inst);
    return {result, static_cast<double>(result), idx};
}

Val
ThreadContext::floatBinary(Op unit, Val a, Val b, double result)
{
    TraceInst inst = trace::makeCompute(unit, a.inst, b.inst);
    InstIndex idx = recordSimple(inst);
    return {Val::safeToInt(result), result, idx};
}

// ---------------------------------------------------------------------
// Integer ops
// ---------------------------------------------------------------------

Val
ThreadContext::add(Val a, Val b)
{
    return intBinary(Op::IALU, a, b,
                     static_cast<int64_t>(static_cast<uint64_t>(a.i) +
                                          static_cast<uint64_t>(b.i)));
}

Val
ThreadContext::sub(Val a, Val b)
{
    return intBinary(Op::IALU, a, b,
                     static_cast<int64_t>(static_cast<uint64_t>(a.i) -
                                          static_cast<uint64_t>(b.i)));
}

Val
ThreadContext::mul(Val a, Val b)
{
    return intBinary(Op::IALU, a, b,
                     static_cast<int64_t>(static_cast<uint64_t>(a.i) *
                                          static_cast<uint64_t>(b.i)));
}

Val
ThreadContext::divi(Val a, Val b)
{
    int64_t q = (b.i == 0) ? 0 : a.i / b.i;
    return intBinary(Op::IALU, a, b, q);
}

Val
ThreadContext::rem(Val a, Val b)
{
    int64_t r = (b.i == 0) ? 0 : a.i % b.i;
    return intBinary(Op::IALU, a, b, r);
}

Val
ThreadContext::band(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i & b.i);
}

Val
ThreadContext::bor(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i | b.i);
}

Val
ThreadContext::bxor(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i ^ b.i);
}

Val
ThreadContext::shl(Val a, Val b)
{
    uint64_t shift = static_cast<uint64_t>(b.i) & 63;
    return intBinary(Op::SHIFT, a, b,
                     static_cast<int64_t>(static_cast<uint64_t>(a.i)
                                          << shift));
}

Val
ThreadContext::shr(Val a, Val b)
{
    uint64_t shift = static_cast<uint64_t>(b.i) & 63;
    return intBinary(Op::SHIFT, a, b, a.i >> shift);
}

Val
ThreadContext::lt(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i < b.i ? 1 : 0);
}

Val
ThreadContext::le(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i <= b.i ? 1 : 0);
}

Val
ThreadContext::gt(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i > b.i ? 1 : 0);
}

Val
ThreadContext::ge(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i >= b.i ? 1 : 0);
}

Val
ThreadContext::eq(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i == b.i ? 1 : 0);
}

Val
ThreadContext::ne(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i != b.i ? 1 : 0);
}

Val
ThreadContext::imin(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i < b.i ? a.i : b.i);
}

Val
ThreadContext::imax(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, a.i > b.i ? a.i : b.i);
}

Val
ThreadContext::lnot(Val a)
{
    TraceInst inst = trace::makeCompute(Op::IALU, a.inst);
    InstIndex idx = recordSimple(inst);
    int64_t r = (a.i == 0) ? 1 : 0;
    return {r, static_cast<double>(r), idx};
}

Val
ThreadContext::land(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, (a.i != 0 && b.i != 0) ? 1 : 0);
}

Val
ThreadContext::lor(Val a, Val b)
{
    return intBinary(Op::IALU, a, b, (a.i != 0 || b.i != 0) ? 1 : 0);
}

// ---------------------------------------------------------------------
// Floating point ops
// ---------------------------------------------------------------------

Val
ThreadContext::fadd(Val a, Val b)
{
    return floatBinary(Op::FADD, a, b, a.f + b.f);
}

Val
ThreadContext::fsub(Val a, Val b)
{
    return floatBinary(Op::FADD, a, b, a.f - b.f);
}

Val
ThreadContext::fmul(Val a, Val b)
{
    return floatBinary(Op::FMUL, a, b, a.f * b.f);
}

Val
ThreadContext::fdivv(Val a, Val b)
{
    return floatBinary(Op::FDIV, a, b, b.f == 0.0 ? 0.0 : a.f / b.f);
}

Val
ThreadContext::fneg(Val a)
{
    TraceInst inst = trace::makeCompute(Op::FADD, a.inst);
    InstIndex idx = recordSimple(inst);
    double r = -a.f;
    return {Val::safeToInt(r), r, idx};
}

Val
ThreadContext::fabsv(Val a)
{
    TraceInst inst = trace::makeCompute(Op::FADD, a.inst);
    InstIndex idx = recordSimple(inst);
    double r = std::fabs(a.f);
    return {Val::safeToInt(r), r, idx};
}

Val
ThreadContext::fsqrt(Val a)
{
    TraceInst inst = trace::makeCompute(Op::FDIV, a.inst);
    InstIndex idx = recordSimple(inst);
    double r = a.f < 0.0 ? 0.0 : std::sqrt(a.f);
    return {Val::safeToInt(r), r, idx};
}

Val
ThreadContext::fminv(Val a, Val b)
{
    return floatBinary(Op::FADD, a, b, a.f < b.f ? a.f : b.f);
}

Val
ThreadContext::fmaxv(Val a, Val b)
{
    return floatBinary(Op::FADD, a, b, a.f > b.f ? a.f : b.f);
}

Val
ThreadContext::flt(Val a, Val b)
{
    TraceInst inst = trace::makeCompute(Op::FADD, a.inst, b.inst);
    InstIndex idx = recordSimple(inst);
    int64_t r = a.f < b.f ? 1 : 0;
    return {r, static_cast<double>(r), idx};
}

Val
ThreadContext::fle(Val a, Val b)
{
    TraceInst inst = trace::makeCompute(Op::FADD, a.inst, b.inst);
    InstIndex idx = recordSimple(inst);
    int64_t r = a.f <= b.f ? 1 : 0;
    return {r, static_cast<double>(r), idx};
}

Val
ThreadContext::fgt(Val a, Val b)
{
    TraceInst inst = trace::makeCompute(Op::FADD, a.inst, b.inst);
    InstIndex idx = recordSimple(inst);
    int64_t r = a.f > b.f ? 1 : 0;
    return {r, static_cast<double>(r), idx};
}

Val
ThreadContext::fge(Val a, Val b)
{
    TraceInst inst = trace::makeCompute(Op::FADD, a.inst, b.inst);
    InstIndex idx = recordSimple(inst);
    int64_t r = a.f >= b.f ? 1 : 0;
    return {r, static_cast<double>(r), idx};
}

Val
ThreadContext::toFloat(Val a)
{
    TraceInst inst = trace::makeCompute(Op::FCVT, a.inst);
    InstIndex idx = recordSimple(inst);
    double r = static_cast<double>(a.i);
    return {a.i, r, idx};
}

Val
ThreadContext::toInt(Val a)
{
    TraceInst inst = trace::makeCompute(Op::FCVT, a.inst);
    InstIndex idx = recordSimple(inst);
    int64_t r = Val::safeToInt(a.f);
    return {r, static_cast<double>(r), idx};
}

// ---------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------

bool
ThreadContext::branch(uint32_t site, Val cond)
{
    bool taken = cond.b();
    TraceInst inst = trace::makeBranch(site, taken, cond.inst);
    recordSimple(inst);
    ++stats_.branches;
    return taken;
}

// ---------------------------------------------------------------------
// Memory and synchronization awaitables
// ---------------------------------------------------------------------

void
ThreadContext::Awaiter::await_suspend(std::coroutine_handle<> handle) noexcept
{
    ctx->resume_handle_ = handle;
    ctx->engine_->onSuspend(ctx->proc_);
}

Val
ThreadContext::Awaiter::await_resume() const noexcept
{
    return ctx->pending_.result;
}

void
ThreadContext::pushDep(PendingOp &op, Val v)
{
    if (v.inst == kNoSrc)
        return;
    assert(op.num_deps < trace::kMaxSrcs);
    op.deps[op.num_deps++] = v.inst;
}

ThreadContext::Awaiter
ThreadContext::loadInt(Addr addr, Val dep1, Val dep2)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::LOAD;
    pending_.is_float = false;
    pending_.addr = addr;
    pushDep(pending_, dep1);
    pushDep(pending_, dep2);
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::loadFloat(Addr addr, Val dep1, Val dep2)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::LOAD;
    pending_.is_float = true;
    pending_.addr = addr;
    pushDep(pending_, dep1);
    pushDep(pending_, dep2);
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::storeInt(Addr addr, Val value, Val dep1, Val dep2)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::STORE;
    pending_.is_float = false;
    pending_.addr = addr;
    pending_.data = value;
    pushDep(pending_, value);
    pushDep(pending_, dep1);
    pushDep(pending_, dep2);
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::storeFloat(Addr addr, Val value, Val dep1, Val dep2)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::STORE;
    pending_.is_float = true;
    pending_.addr = addr;
    pending_.data = value;
    pushDep(pending_, value);
    pushDep(pending_, dep1);
    pushDep(pending_, dep2);
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::lock(LockId lock)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::LOCK;
    pending_.sync_id = lock;
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::unlock(LockId lock)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::UNLOCK;
    pending_.sync_id = lock;
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::barrier(BarrierId barrier)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::BARRIER;
    pending_.sync_id = barrier;
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::waitEvent(EventId event)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::WAIT_EVENT;
    pending_.sync_id = event;
    return Awaiter{this};
}

ThreadContext::Awaiter
ThreadContext::setEvent(EventId event)
{
    pending_ = PendingOp{};
    pending_.kind = PendingKind::SET_EVENT;
    pending_.sync_id = event;
    return Awaiter{this};
}

} // namespace dsmem::mp
