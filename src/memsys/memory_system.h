#ifndef DSMEM_MEMSYS_MEMORY_SYSTEM_H
#define DSMEM_MEMSYS_MEMORY_SYSTEM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "memsys/cache.h"
#include "memsys/config.h"
#include "memsys/dram.h"
#include "util/flat_map.h"

namespace dsmem::memsys {

/** Classification of a completed cache access. */
enum class AccessKind : uint8_t {
    HIT,           ///< Serviced by the local cache.
    READ_MISS,     ///< Load missed; line fetched.
    WRITE_MISS,    ///< Store missed; line fetched MODIFIED.
    WRITE_UPGRADE, ///< Store to a SHARED line; ownership acquired.
};

/** Result of one memory access, including the latency annotation. */
struct AccessResult {
    AccessKind kind = AccessKind::HIT;
    uint32_t latency = 1;       ///< Cycles for the access to complete.
    uint32_t invalidations = 0; ///< Remote copies invalidated.

    /**
     * The line fetch was handed to the banked DRAM model instead of
     * completing synchronously: `latency` is provisional (a read's
     * real latency is known only at its DRAM completion, which the
     * engine waits for; a store's annotation is patched there).
     */
    bool deferred = false;

    bool isMiss() const { return kind != AccessKind::HIT; }

    /** A store counts as a write miss whenever ownership is fetched. */
    bool isWriteMiss() const
    {
        return kind == AccessKind::WRITE_MISS ||
            kind == AccessKind::WRITE_UPGRADE;
    }
};

/** Per-processor reference statistics (feeds the paper's Table 1). */
struct CacheStats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_misses = 0;
    uint64_t write_misses = 0;
    uint64_t invalidations_received = 0;
    uint64_t writebacks = 0;
    uint64_t contention_cycles = 0; ///< Bank-queueing delay incurred.

    /**
     * Banked-DRAM accounting (all zero unless MemoryConfig::dram is
     * enabled; folded in from the DramModel when a run finishes).
     */
    DramAccessStats dram;
};

/**
 * The shared-memory multiprocessor cache hierarchy.
 *
 * Per-processor direct-mapped write-back caches kept coherent by a
 * full-bit-vector directory running an invalidation protocol — the
 * paper's MSI by default, or MESI (an extension) where a read miss
 * with no other sharers installs the line Exclusive so a subsequent
 * local store upgrades silently.
 *
 * Matching the paper's assumptions (Section 3.2), transactions are
 * atomic with a fixed latency by default; the optional bank model
 * (MemoryConfig::banks) adds memory-module queueing delays, using
 * the access timestamps the caller supplies.
 */
class MemorySystem
{
  public:
    MemorySystem(uint32_t num_procs, const CacheConfig &cache_config,
                 const MemoryConfig &mem_config);

    /**
     * Processor @p proc loads from @p addr at global time @p now.
     *
     * The tag-check hit path is inline (one lookup, no protocol
     * action): phase-1 generation issues millions of references and
     * the overwhelming majority hit, so only misses pay an
     * out-of-line call into the directory machinery.
     */
    AccessResult read(uint32_t proc, Addr addr, uint64_t now = 0)
    {
        Cache &cache = *caches_[proc];
        ++stats_[proc].reads;
        if (cache.lookup(addr) != LineState::INVALID)
            return {AccessKind::HIT, mem_config_.hit_latency, 0};
        return readMiss(cache, proc, addr, now);
    }

    /**
     * Processor @p proc stores to @p addr at global time @p now.
     * With the DRAM model active, a deferred write miss carries
     * @p trace_tag through to its DRAM completion so the engine can
     * patch the store's latency annotation (DramModel::kNoTag when
     * the caller doesn't need the completion).
     */
    AccessResult write(uint32_t proc, Addr addr, uint64_t now = 0,
                       uint64_t trace_tag = DramModel::kNoTag)
    {
        Cache &cache = *caches_[proc];
        ++stats_[proc].writes;
        LineState state = cache.lookup(addr);
        if (state == LineState::MODIFIED)
            return {AccessKind::HIT, mem_config_.hit_latency, 0};
        if (state == LineState::EXCLUSIVE) {
            // MESI silent upgrade: sole clean copy, no transaction.
            cache.setState(cache.lineAddr(addr), LineState::MODIFIED);
            return {AccessKind::HIT, mem_config_.hit_latency, 0};
        }
        return writeMiss(cache, proc, addr, state, now, trace_tag);
    }

    /**
     * Out-of-line reference copies of read()/write() preserved from
     * the seed: bounds-checked cache selection and no inlined tag
     * check. The legacy engine (EngineConfig::legacy_engine) calls
     * these so bench_phase1's baseline keeps the original access-path
     * cost; results and statistics are identical to read()/write().
     */
    AccessResult readLegacy(uint32_t proc, Addr addr, uint64_t now = 0);
    AccessResult writeLegacy(uint32_t proc, Addr addr, uint64_t now = 0);

    uint32_t numProcs() const { return static_cast<uint32_t>(caches_.size()); }
    const CacheStats &stats(uint32_t proc) const { return stats_.at(proc); }
    const Cache &cache(uint32_t proc) const { return *caches_.at(proc); }
    const MemoryConfig &memConfig() const { return mem_config_; }

    /** The banked DRAM model, or null when dram.banks == 0. */
    DramModel *dram() { return dram_.get(); }
    const DramModel *dram() const { return dram_.get(); }

    /** Per-bank DRAM summary (empty banks when the model is off). */
    DramSummary dramSummary() const
    {
        return dram_ ? dram_->summary() : DramSummary{};
    }

    /**
     * Fold the DramModel's per-processor accounting into CacheStats.
     * The engine calls this once when a run finishes; a no-op without
     * the DRAM model.
     */
    void finalizeDramStats();

    /** Aggregate statistics across all processors. */
    CacheStats totalStats() const;

  private:
    /** Load miss: fetch, downgrade remote E/M, install, track. */
    AccessResult readMiss(Cache &cache, uint32_t proc, Addr addr,
                          uint64_t now);

    /** Store miss or SHARED upgrade: invalidate, install/upgrade. */
    AccessResult writeMiss(Cache &cache, uint32_t proc, Addr addr,
                           LineState state, uint64_t now,
                           uint64_t trace_tag = DramModel::kNoTag);

    /** Directory entry: which caches hold the line, and who owns it. */
    struct DirEntry {
        uint32_t sharers = 0; ///< Bit per processor.
        int32_t owner = -1;   ///< Holder of an E/M copy, or -1.
    };

    /**
     * Directory entry for @p line, created on demand. The directory
     * is an open-addressed flat map with backward-shift deletion, so
     * the returned reference is invalidated by ANY later insert or
     * erase (evictions, invalidations) — callers re-fetch after such
     * calls instead of holding the reference across them.
     */
    DirEntry &dirEntry(Addr line);

    /** Remove @p proc from the sharer set of @p line. */
    void dropSharer(Addr line, uint32_t proc);

    /** Handle a victim eviction from @p proc's cache at @p now. */
    void handleEviction(uint32_t proc, Addr victim_line, bool dirty,
                        uint64_t now);

    /** Invalidate all remote copies of @p line; returns the count. */
    uint32_t invalidateRemote(Addr line, uint32_t requester,
                              uint64_t now);

    /**
     * Queue a coherence writeback (eviction of a dirty victim, or a
     * downgrade/invalidation of a MODIFIED remote copy) at the DRAM:
     * fire-and-forget write traffic attributed to the processor whose
     * copy drains. A no-op without the DRAM model — the paper's
     * fixed-latency memory absorbs writebacks for free.
     */
    void enqueueWriteback(uint32_t proc, Addr line, uint64_t now);

    /**
     * Miss latency including any bank-queueing delay at @p now;
     * records contention cycles against @p proc.
     */
    uint32_t missLatency(uint32_t proc, Addr line, uint64_t now);

    MemoryConfig mem_config_;
    std::vector<std::unique_ptr<Cache>> caches_;
    std::vector<CacheStats> stats_;
    util::FlatMap<Addr, DirEntry> directory_{256};
    std::vector<uint64_t> bank_free_;
    std::unique_ptr<DramModel> dram_; ///< Null when dram.banks == 0.
    uint32_t line_bytes_ = 0;         ///< For DRAM line indexing.
};

} // namespace dsmem::memsys

#endif // DSMEM_MEMSYS_MEMORY_SYSTEM_H
