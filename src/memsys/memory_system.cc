#include "memsys/memory_system.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dsmem::memsys {

MemorySystem::MemorySystem(uint32_t num_procs,
                           const CacheConfig &cache_config,
                           const MemoryConfig &mem_config)
    : mem_config_(mem_config)
{
    if (num_procs == 0 || num_procs > 32)
        throw std::invalid_argument("MemorySystem supports 1..32 procs");
    caches_.reserve(num_procs);
    for (uint32_t p = 0; p < num_procs; ++p)
        caches_.push_back(std::make_unique<Cache>(cache_config));
    stats_.resize(num_procs);
    line_bytes_ = cache_config.line_bytes;
    if (mem_config.banks > 0)
        bank_free_.assign(mem_config.banks, 0);
    if (mem_config.dram.enabled()) {
        if (mem_config.banks > 0)
            throw std::invalid_argument(
                "the toy bank model (banks > 0) and the DRAM model "
                "(dram.banks > 0) are mutually exclusive");
        if (!mem_config.dram.valid(line_bytes_))
            throw std::invalid_argument("invalid DramConfig");
        dram_ = std::make_unique<DramModel>(mem_config.dram,
                                            line_bytes_, num_procs);
    }
}

AccessResult
MemorySystem::readLegacy(uint32_t proc, Addr addr, uint64_t now)
{
    Cache &cache = *caches_.at(proc);
    ++stats_[proc].reads;
    if (cache.lookup(addr) != LineState::INVALID)
        return {AccessKind::HIT, mem_config_.hit_latency, 0};
    return readMiss(cache, proc, addr, now);
}

AccessResult
MemorySystem::writeLegacy(uint32_t proc, Addr addr, uint64_t now)
{
    Cache &cache = *caches_.at(proc);
    ++stats_[proc].writes;
    LineState state = cache.lookup(addr);
    if (state == LineState::MODIFIED)
        return {AccessKind::HIT, mem_config_.hit_latency, 0};
    if (state == LineState::EXCLUSIVE) {
        cache.setState(cache.lineAddr(addr), LineState::MODIFIED);
        return {AccessKind::HIT, mem_config_.hit_latency, 0};
    }
    return writeMiss(cache, proc, addr, state, now);
}

MemorySystem::DirEntry &
MemorySystem::dirEntry(Addr line)
{
    return directory_.findOrInsert(line);
}

void
MemorySystem::dropSharer(Addr line, uint32_t proc)
{
    DirEntry *entry = directory_.find(line);
    if (entry == nullptr)
        return;
    entry->sharers &= ~(1u << proc);
    if (entry->owner == static_cast<int32_t>(proc))
        entry->owner = -1;
    if (entry->sharers == 0)
        directory_.erase(line);
}

void
MemorySystem::enqueueWriteback(uint32_t proc, Addr line, uint64_t now)
{
    if (dram_)
        dram_->enqueue(proc, line / line_bytes_, false, now,
                       DramModel::kNoTag);
}

void
MemorySystem::handleEviction(uint32_t proc, Addr victim_line,
                             bool dirty, uint64_t now)
{
    if (dirty) {
        ++stats_[proc].writebacks;
        enqueueWriteback(proc, victim_line, now);
    }
    dropSharer(victim_line, proc);
}

uint32_t
MemorySystem::invalidateRemote(Addr line, uint32_t requester,
                               uint64_t now)
{
    DirEntry *entry = directory_.find(line);
    if (entry == nullptr)
        return 0;
    uint32_t invalidated = 0;
    uint32_t sharers = entry->sharers;
    for (uint32_t p = 0; p < numProcs(); ++p) {
        if (p == requester || (sharers & (1u << p)) == 0)
            continue;
        // A MODIFIED remote copy is implicitly written back as part
        // of the ownership transfer; an EXCLUSIVE copy is clean.
        if (caches_[p]->lookup(line) == LineState::MODIFIED) {
            ++stats_[p].writebacks;
            enqueueWriteback(p, line, now);
        }
        caches_[p]->invalidate(line);
        ++stats_[p].invalidations_received;
        ++invalidated;
    }
    entry->sharers &= (1u << requester);
    entry->owner = -1;
    if (entry->sharers == 0)
        directory_.erase(line);
    return invalidated;
}

uint32_t
MemorySystem::missLatency(uint32_t proc, Addr line, uint64_t now)
{
    uint32_t latency = mem_config_.miss_latency;
    if (mem_config_.banks > 0) {
        size_t bank = (line / caches_[0]->config().line_bytes) %
            mem_config_.banks;
        uint64_t start = std::max(bank_free_[bank], now);
        uint32_t queue_delay = static_cast<uint32_t>(start - now);
        latency += queue_delay;
        stats_[proc].contention_cycles += queue_delay;
        bank_free_[bank] = start + mem_config_.bank_occupancy;
    }
    return latency;
}

AccessResult
MemorySystem::readMiss(Cache &cache, uint32_t proc, Addr addr,
                       uint64_t now)
{
    Addr line = cache.lineAddr(addr);
    ++stats_[proc].read_misses;
    uint32_t latency = missLatency(proc, line, now);

    // Downgrade a remote E/M copy to SHARED (writeback if dirty).
    DirEntry &entry = dirEntry(line);
    bool had_copies = entry.sharers != 0;
    if (entry.owner >= 0 && entry.owner != static_cast<int32_t>(proc)) {
        uint32_t owner = static_cast<uint32_t>(entry.owner);
        if (caches_[owner]->lookup(line) == LineState::MODIFIED) {
            ++stats_[owner].writebacks;
            enqueueWriteback(owner, line, now);
        }
        caches_[owner]->setState(line, LineState::SHARED);
        entry.owner = -1;
    }

    // MESI: a read miss with no other cached copy installs Exclusive.
    LineState install_state = LineState::SHARED;
    if (mem_config_.protocol == Protocol::MESI && !had_copies)
        install_state = LineState::EXCLUSIVE;

    Addr victim = 0;
    bool victim_dirty = false;
    if (cache.install(line, install_state, &victim, &victim_dirty))
        handleEviction(proc, victim, victim_dirty, now);
    // handleEviction may have erased entries; re-fetch ours.
    DirEntry &entry2 = dirEntry(line);
    entry2.sharers |= (1u << proc);
    if (install_state == LineState::EXCLUSIVE)
        entry2.owner = static_cast<int32_t>(proc);

    if (dram_) {
        // The coherence transaction commits now (directory state is
        // global time, like today); the line *fetch* is a DRAM read
        // request the engine waits on. Tag = proc: blocking reads
        // mean at most one outstanding read per processor.
        dram_->enqueue(proc, line / line_bytes_, true, now, proc);
        return {AccessKind::READ_MISS, 0, 0, true};
    }
    return {AccessKind::READ_MISS, latency, 0};
}

AccessResult
MemorySystem::writeMiss(Cache &cache, uint32_t proc, Addr addr,
                        LineState state, uint64_t now,
                        uint64_t trace_tag)
{
    Addr line = cache.lineAddr(addr);
    ++stats_[proc].write_misses;
    uint32_t latency = missLatency(proc, line, now);
    uint32_t invalidations = invalidateRemote(line, proc, now);

    if (state == LineState::SHARED) {
        // Ownership upgrade: line already resident, no line fetch —
        // the directory round-trip keeps its fixed cost even under
        // the DRAM model.
        cache.setState(line, LineState::MODIFIED);
        DirEntry &entry = dirEntry(line);
        entry.sharers |= (1u << proc);
        entry.owner = static_cast<int32_t>(proc);
        return {AccessKind::WRITE_UPGRADE, latency, invalidations};
    }

    Addr victim = 0;
    bool victim_dirty = false;
    if (cache.install(line, LineState::MODIFIED, &victim, &victim_dirty))
        handleEviction(proc, victim, victim_dirty, now);
    DirEntry &entry = dirEntry(line);
    entry.sharers |= (1u << proc);
    entry.owner = static_cast<int32_t>(proc);

    if (dram_) {
        // Fire-and-forget under the write buffer: the processor
        // continues; the annotation (provisionally miss_latency) is
        // patched with the real value at the DRAM completion.
        dram_->enqueue(proc, line / line_bytes_, false, now, trace_tag);
        return {AccessKind::WRITE_MISS, latency, invalidations, true};
    }
    return {AccessKind::WRITE_MISS, latency, invalidations};
}

void
MemorySystem::finalizeDramStats()
{
    if (!dram_)
        return;
    for (uint32_t p = 0; p < numProcs(); ++p)
        stats_[p].dram = dram_->procStats(p);
}

CacheStats
MemorySystem::totalStats() const
{
    CacheStats total;
    for (const CacheStats &s : stats_) {
        total.reads += s.reads;
        total.writes += s.writes;
        total.read_misses += s.read_misses;
        total.write_misses += s.write_misses;
        total.invalidations_received += s.invalidations_received;
        total.writebacks += s.writebacks;
        total.contention_cycles += s.contention_cycles;
        total.dram.requests += s.dram.requests;
        total.dram.row_hits += s.dram.row_hits;
        total.dram.row_misses += s.dram.row_misses;
        total.dram.row_conflicts += s.dram.row_conflicts;
        total.dram.queue_cycles += s.dram.queue_cycles;
        total.dram.bus_wait_cycles += s.dram.bus_wait_cycles;
    }
    return total;
}

} // namespace dsmem::memsys
