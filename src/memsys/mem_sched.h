#ifndef DSMEM_MEMSYS_MEM_SCHED_H
#define DSMEM_MEMSYS_MEM_SCHED_H

#include <cstdint>
#include <memory>
#include <vector>

#include "memsys/config.h"

namespace dsmem::memsys {

/**
 * One memory request queued at a DRAM bank.
 *
 * `ticket` is a global issue counter: arrivals are enqueued in
 * global-simulated-time order (the engine's event loop is monotonic),
 * so a bank queue is always sorted by (arrival, ticket) and that pair
 * totally orders requests — "oldest" below always means smallest
 * (arrival, ticket).
 */
struct DramRequest {
    uint64_t arrival = 0; ///< Global cycle the request reached DRAM.
    uint64_t ticket = 0;  ///< Issue order tiebreak (unique).
    uint64_t row = 0;     ///< DRAM row the line maps to.
    uint64_t tag = 0;     ///< Caller cookie, returned on completion.
    uint32_t proc = 0;    ///< Requesting processor (stats + RR).
    bool is_read = false; ///< Read fill (a thread waits) vs write.
};

/**
 * Request-scheduler plug-in: given one bank's queue at a dispatch
 * instant, pick which request the bank serves next.
 *
 * Contract (what the oracle test holds every policy to):
 *  - `queue` is the bank's pending requests sorted by
 *    (arrival, ticket); it is non-empty and its front is eligible.
 *  - Only *eligible* requests — `arrival <= now` — may be picked.
 *    The queue may also hold future arrivals (the model batches
 *    dispatch decisions), and choosing one would let a scheduler see
 *    the future.
 *  - `open_row_valid`/`open_row` describe the bank's row buffer so
 *    row-hit-first policies can prioritize.
 *  - The choice must be a pure function of (queue, now, row state,
 *    the policy's own per-bank state); determinism of the whole
 *    simulation depends on it.
 *
 * Implementations may keep per-bank state (batch counters, RR
 * pointers) keyed by `bank`.
 */
class MemScheduler
{
  public:
    virtual ~MemScheduler() = default;

    /** Index into @p queue of the request to dispatch at @p now. */
    virtual size_t pick(uint32_t bank,
                        const std::vector<DramRequest> &queue,
                        uint64_t now, bool open_row_valid,
                        uint64_t open_row) = 0;
};

/**
 * Build the scheduler for @p config (config.sched selects the
 * policy; config.batch_cap parameterizes FR_BATCH). @p num_procs and
 * config.banks size the per-bank state tables.
 */
std::unique_ptr<MemScheduler> makeScheduler(const DramConfig &config,
                                            uint32_t num_procs);

} // namespace dsmem::memsys

#endif // DSMEM_MEMSYS_MEM_SCHED_H
