#include "memsys/dram.h"

#include <algorithm>
#include <stdexcept>

#include "util/failpoint.h"

namespace dsmem::memsys {

DramModel::DramModel(const DramConfig &config, uint32_t line_bytes,
                     uint32_t num_procs)
    : config_(config),
      sched_(makeScheduler(config, num_procs)),
      banks_(config.banks),
      proc_stats_(num_procs),
      lines_per_row_(config.row_bytes == 0
                         ? 0
                         : config.row_bytes / line_bytes)
{
    if (!config.valid(line_bytes))
        throw std::invalid_argument("invalid DramConfig");
    if (config.banks == 0)
        throw std::invalid_argument("DramModel requires banks > 0");
}

void
DramModel::enqueue(uint32_t proc, uint64_t line_index, bool is_read,
                   uint64_t now, uint64_t tag)
{
    DramRequest req;
    req.arrival = now;
    req.ticket = next_ticket_++;
    req.proc = proc;
    req.is_read = is_read;
    req.tag = tag;
    uint64_t bank = line_index % banks_.size();
    req.row = lines_per_row_ == 0
        ? 0
        : (line_index / banks_.size()) / lines_per_row_;
    banks_[bank].queue.push_back(req);
    ++pending_;
    ++proc_stats_[proc].requests;
}

uint64_t
DramModel::bankDispatchCycle(const Bank &bank) const
{
    if (bank.queue.empty())
        return kNever;
    // The queue is sorted by (arrival, ticket): front is oldest.
    return std::max(bank.free_at, bank.queue.front().arrival);
}

uint64_t
DramModel::nextDispatchCycle() const
{
    uint64_t best = kNever;
    for (const Bank &bank : banks_)
        best = std::min(best, bankDispatchCycle(bank));
    return best;
}

void
DramModel::advanceTo(uint64_t limit)
{
    for (;;) {
        // Next dispatch = (instant, bank id) minimum, so concurrent
        // bank activity interleaves deterministically and the shared
        // bus is granted in dispatch order.
        uint64_t t = kNever;
        size_t b = 0;
        for (size_t i = 0; i < banks_.size(); ++i) {
            uint64_t c = bankDispatchCycle(banks_[i]);
            if (c < t) {
                t = c;
                b = i;
            }
        }
        if (t == kNever || t > limit)
            return;

        util::failpoint("dram.dispatch");

        Bank &bank = banks_[b];
        size_t i = sched_->pick(static_cast<uint32_t>(b), bank.queue,
                                t, bank.row_valid, bank.open_row);
        if (i >= bank.queue.size() || bank.queue[i].arrival > t)
            throw std::logic_error(
                "MemScheduler picked an ineligible request");
        DramRequest req = bank.queue[i];
        bank.queue.erase(bank.queue.begin() +
                         static_cast<ptrdiff_t>(i));
        --pending_;

        DramAccessStats &ps = proc_stats_[req.proc];
        uint32_t service = config_.t_cas;
        if (lines_per_row_ != 0) {
            if (bank.row_valid && bank.open_row == req.row) {
                ++ps.row_hits;
                ++bank.stats.row_hits;
            } else if (!bank.row_valid) {
                ++ps.row_misses;
                service += config_.t_rcd;
            } else {
                ++ps.row_conflicts;
                service += config_.t_rp + config_.t_rcd;
            }
            bank.row_valid = true;
            bank.open_row = req.row;
        }
        ps.queue_cycles += t - req.arrival;

        uint64_t service_end = t + service;
        uint64_t transfer = service_end;
        if (config_.bus_cycles != 0) {
            transfer = std::max(service_end, bus_free_);
            ps.bus_wait_cycles += transfer - service_end;
            bus_free_ = transfer + config_.bus_cycles;
        }
        uint64_t done = transfer + config_.bus_cycles;
        bank.free_at = done;
        bank.stats.busy_cycles += done - t;
        ++bank.stats.requests;

        Completion c;
        c.tag = req.tag;
        c.finish = done + config_.base_latency;
        c.latency = c.finish - req.arrival;
        c.proc = req.proc;
        c.is_read = req.is_read;
        completions_.push_back(c);
    }
}

DramSummary
DramModel::summary() const
{
    DramSummary s;
    s.banks.reserve(banks_.size());
    for (const Bank &bank : banks_)
        s.banks.push_back(bank.stats);
    return s;
}

} // namespace dsmem::memsys
