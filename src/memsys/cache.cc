#include "memsys/cache.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace dsmem::memsys {

bool
CacheConfig::valid() const
{
    if (line_bytes == 0 || size_bytes == 0)
        return false;
    if (!std::has_single_bit(line_bytes) || !std::has_single_bit(size_bytes))
        return false;
    return size_bytes >= line_bytes;
}

Cache::Cache(const CacheConfig &config) : config_(config)
{
    if (!config.valid())
        throw std::invalid_argument("invalid CacheConfig");
    line_shift_ = static_cast<uint32_t>(std::countr_zero(config.line_bytes));
    line_mask_ = config.line_bytes - 1;
    set_mask_ = config.numLines() - 1;
    lines_.resize(config.numLines());
}

bool
Cache::install(Addr addr, LineState state, Addr *evicted,
               bool *evicted_dirty)
{
    assert(state != LineState::INVALID);
    Line &line = lines_[setIndex(addr)];
    bool victim = false;
    if (line.state != LineState::INVALID && line.tag != lineAddr(addr)) {
        victim = true;
        if (evicted)
            *evicted = line.tag;
        if (evicted_dirty)
            *evicted_dirty = (line.state == LineState::MODIFIED);
    }
    line.tag = lineAddr(addr);
    line.state = state;
    return victim;
}

void
Cache::setState(Addr addr, LineState state)
{
    Line &line = lines_[setIndex(addr)];
    assert(line.state != LineState::INVALID && line.tag == lineAddr(addr));
    line.state = state;
}

void
Cache::invalidate(Addr addr)
{
    Line &line = lines_[setIndex(addr)];
    if (line.state != LineState::INVALID && line.tag == lineAddr(addr))
        line.state = LineState::INVALID;
}

uint32_t
Cache::validLineCount() const
{
    uint32_t n = 0;
    for (const Line &line : lines_)
        if (line.state != LineState::INVALID)
            ++n;
    return n;
}

} // namespace dsmem::memsys
