#ifndef DSMEM_MEMSYS_CONFIG_H
#define DSMEM_MEMSYS_CONFIG_H

#include <compare>
#include <cstdint>

namespace dsmem::memsys {

/**
 * Per-processor data cache geometry.
 *
 * Defaults follow Section 3.2 of the paper: 64 KB direct-mapped
 * write-back caches with a 16-byte line size, kept coherent with an
 * invalidation-based scheme.
 */
struct CacheConfig {
    uint32_t size_bytes = 64 * 1024;
    uint32_t line_bytes = 16;

    uint32_t numLines() const { return size_bytes / line_bytes; }

    /** True when both fields are powers of two and consistent. */
    bool valid() const;

    friend constexpr auto operator<=>(const CacheConfig &,
                                      const CacheConfig &) = default;
};

/** Coherence protocol variants. */
enum class Protocol : uint8_t {
    MSI,  ///< The paper's baseline invalidation protocol.
    MESI, ///< Adds an Exclusive state: silent upgrade of private data.
};

/** Request-scheduling policy of the banked DRAM model. */
enum class SchedPolicy : uint32_t {
    FCFS,     ///< Oldest eligible request first.
    FR_FCFS,  ///< Oldest row hit first, else oldest (open-row greedy).
    FR_BATCH, ///< FR-FCFS with a BLISS-style row-hit bypass cap.
    RR_PROC,  ///< Round-robin across requesting processors.
};

/** Stable lower-case name of @p policy ("fcfs", "frfcfs", ...). */
const char *schedPolicyName(SchedPolicy policy);

/** Parse a schedPolicyName back; false on unknown text. */
bool parseSchedPolicy(const char *text, SchedPolicy &out);

/**
 * Geometry and timing of the banked DRAM model (an extension; the
 * paper's Section 5 flags the lack of any contention model as its
 * biggest simplification). `banks == 0` disables the model entirely
 * and every keying/serialization site treats the configuration as the
 * paper's fixed-latency memory — byte-identical output, names, and
 * signatures.
 *
 * When enabled, a miss becomes a request: it queues at its
 * line-interleaved bank, a MemScheduler picks the dispatch order,
 * service time depends on the open-row state (hit / closed / conflict),
 * the line then crosses one shared data bus, and `base_latency`
 * (interconnect + directory) is added on top. The defaults sum to the
 * paper's 50-cycle penalty for an uncontended row-closed access:
 * 30 + 8 (RCD) + 8 (CAS) + 4 (bus).
 *
 * Every field is uint32_t so the struct has no padding: keying sites
 * hash and compare it memberwise, and the static_asserts guarding
 * them key off sizeof.
 */
struct DramConfig {
    uint32_t banks = 0;       ///< 0 = disabled (the paper's model).
    SchedPolicy sched = SchedPolicy::FCFS;
    uint32_t row_bytes = 2048; ///< Open-row size; 0 = no row tracking.
    uint32_t t_rcd = 8;       ///< Activate (row-closed) cycles.
    uint32_t t_rp = 8;        ///< Precharge (row-conflict) cycles.
    uint32_t t_cas = 8;       ///< Column access cycles (every access).
    uint32_t bus_cycles = 4;  ///< Shared data-bus transfer time.
    uint32_t base_latency = 30; ///< Interconnect + directory cycles.
    uint32_t batch_cap = 4;   ///< FR_BATCH: max row-hit bypasses.

    bool enabled() const { return banks != 0; }

    /** Sanity: callers validate against the cache line size. */
    bool valid(uint32_t line_bytes) const;

    friend constexpr auto operator<=>(const DramConfig &,
                                      const DramConfig &) = default;
};

/**
 * Memory latency model.
 *
 * The paper assumes 1 cycle for cache hits and a fixed penalty for
 * misses (50 cycles in the main experiments, 100 in Section 4.2);
 * queueing and contention are not modeled. Setting `banks` non-zero
 * enables an optional memory-module contention model (an extension;
 * the paper's Section 5 notes its results are optimistic for
 * ignoring contention): misses to the same line-interleaved bank
 * within `bank_occupancy` cycles of each other queue up, and the
 * queueing delay is added to the miss latency.
 */
struct MemoryConfig {
    uint32_t hit_latency = 1;
    uint32_t miss_latency = 50;
    Protocol protocol = Protocol::MSI;
    uint32_t banks = 0;          ///< 0 = contention-free (the paper).
    uint32_t bank_occupancy = 4; ///< Cycles a miss occupies its bank.

    /**
     * The banked DRAM model with pluggable request scheduling
     * (dram.banks == 0 keeps the fixed-latency model above, bit for
     * bit). Mutually exclusive with the toy `banks` model.
     */
    DramConfig dram{};

    /**
     * Memberwise ordering so a full configuration can key caches and
     * stores (two configs compare equal iff every latency, protocol,
     * and contention parameter matches).
     */
    friend constexpr auto operator<=>(const MemoryConfig &,
                                      const MemoryConfig &) = default;
};

} // namespace dsmem::memsys

#endif // DSMEM_MEMSYS_CONFIG_H
