#ifndef DSMEM_MEMSYS_CONFIG_H
#define DSMEM_MEMSYS_CONFIG_H

#include <compare>
#include <cstdint>

namespace dsmem::memsys {

/**
 * Per-processor data cache geometry.
 *
 * Defaults follow Section 3.2 of the paper: 64 KB direct-mapped
 * write-back caches with a 16-byte line size, kept coherent with an
 * invalidation-based scheme.
 */
struct CacheConfig {
    uint32_t size_bytes = 64 * 1024;
    uint32_t line_bytes = 16;

    uint32_t numLines() const { return size_bytes / line_bytes; }

    /** True when both fields are powers of two and consistent. */
    bool valid() const;

    friend constexpr auto operator<=>(const CacheConfig &,
                                      const CacheConfig &) = default;
};

/** Coherence protocol variants. */
enum class Protocol : uint8_t {
    MSI,  ///< The paper's baseline invalidation protocol.
    MESI, ///< Adds an Exclusive state: silent upgrade of private data.
};

/**
 * Memory latency model.
 *
 * The paper assumes 1 cycle for cache hits and a fixed penalty for
 * misses (50 cycles in the main experiments, 100 in Section 4.2);
 * queueing and contention are not modeled. Setting `banks` non-zero
 * enables an optional memory-module contention model (an extension;
 * the paper's Section 5 notes its results are optimistic for
 * ignoring contention): misses to the same line-interleaved bank
 * within `bank_occupancy` cycles of each other queue up, and the
 * queueing delay is added to the miss latency.
 */
struct MemoryConfig {
    uint32_t hit_latency = 1;
    uint32_t miss_latency = 50;
    Protocol protocol = Protocol::MSI;
    uint32_t banks = 0;          ///< 0 = contention-free (the paper).
    uint32_t bank_occupancy = 4; ///< Cycles a miss occupies its bank.

    /**
     * Memberwise ordering so a full configuration can key caches and
     * stores (two configs compare equal iff every latency, protocol,
     * and contention parameter matches).
     */
    friend constexpr auto operator<=>(const MemoryConfig &,
                                      const MemoryConfig &) = default;
};

} // namespace dsmem::memsys

#endif // DSMEM_MEMSYS_CONFIG_H
