#include "memsys/mem_sched.h"

#include <cstring>
#include <stdexcept>

namespace dsmem::memsys {

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::FCFS:
        return "fcfs";
      case SchedPolicy::FR_FCFS:
        return "frfcfs";
      case SchedPolicy::FR_BATCH:
        return "frbatch";
      case SchedPolicy::RR_PROC:
        return "rrproc";
    }
    return "invalid";
}

bool
parseSchedPolicy(const char *text, SchedPolicy &out)
{
    for (SchedPolicy p : {SchedPolicy::FCFS, SchedPolicy::FR_FCFS,
                          SchedPolicy::FR_BATCH, SchedPolicy::RR_PROC}) {
        if (std::strcmp(text, schedPolicyName(p)) == 0) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
DramConfig::valid(uint32_t line_bytes) const
{
    if (banks == 0)
        return true; // Disabled: the other fields are inert.
    if (banks > 1024)
        return false;
    if (row_bytes != 0 &&
        (line_bytes == 0 || row_bytes % line_bytes != 0))
        return false;
    if (t_cas == 0)
        return false; // A zero-cycle access breaks bank occupancy.
    if (sched == SchedPolicy::FR_BATCH && batch_cap == 0)
        return false;
    return true;
}

namespace {

/**
 * Oldest eligible request. The queue is sorted by (arrival, ticket)
 * and its front is guaranteed eligible, so this is index 0.
 */
class FcfsScheduler final : public MemScheduler
{
  public:
    size_t pick(uint32_t, const std::vector<DramRequest> &, uint64_t,
                bool, uint64_t) override
    {
        return 0;
    }
};

/** Oldest eligible row hit if the row buffer matches, else oldest. */
size_t
pickFrFcfs(const std::vector<DramRequest> &queue, uint64_t now,
           bool open_row_valid, uint64_t open_row)
{
    if (open_row_valid) {
        for (size_t i = 0; i < queue.size(); ++i) {
            if (queue[i].arrival > now)
                break; // Sorted: everything after is future too.
            if (queue[i].row == open_row)
                return i;
        }
    }
    return 0;
}

class FrFcfsScheduler final : public MemScheduler
{
  public:
    size_t pick(uint32_t, const std::vector<DramRequest> &queue,
                uint64_t now, bool open_row_valid,
                uint64_t open_row) override
    {
        return pickFrFcfs(queue, now, open_row_valid, open_row);
    }
};

/**
 * FR-FCFS with a BLISS-style starvation bound: each time a row hit
 * bypasses the oldest request the bank's streak counter grows; once
 * it reaches `batch_cap` the oldest request is served unconditionally
 * and the streak resets. No request can therefore wait more than
 * batch_cap consecutive dispatches once it is the oldest — the
 * starvation-bound unit test holds the policy to exactly that.
 */
class FrBatchScheduler final : public MemScheduler
{
  public:
    FrBatchScheduler(uint32_t banks, uint32_t cap)
        : streak_(banks, 0), cap_(cap)
    {
    }

    size_t pick(uint32_t bank, const std::vector<DramRequest> &queue,
                uint64_t now, bool open_row_valid,
                uint64_t open_row) override
    {
        uint32_t &streak = streak_.at(bank);
        if (streak >= cap_) {
            streak = 0;
            return 0;
        }
        size_t i = pickFrFcfs(queue, now, open_row_valid, open_row);
        if (i == 0)
            streak = 0;
        else
            ++streak;
        return i;
    }

  private:
    std::vector<uint32_t> streak_;
    uint32_t cap_;
};

/**
 * Round-robin across processors: each bank remembers the last
 * processor it served and scans forward (wrapping) for the next
 * processor with an eligible request, serving that processor's oldest.
 * Writeback traffic participates under its writing-back processor.
 */
class RrProcScheduler final : public MemScheduler
{
  public:
    RrProcScheduler(uint32_t banks, uint32_t num_procs)
        : last_(banks, num_procs - 1), num_procs_(num_procs)
    {
    }

    size_t pick(uint32_t bank, const std::vector<DramRequest> &queue,
                uint64_t now, bool, uint64_t) override
    {
        uint32_t &last = last_.at(bank);
        for (uint32_t step = 1; step <= num_procs_; ++step) {
            uint32_t proc = (last + step) % num_procs_;
            for (size_t i = 0; i < queue.size(); ++i) {
                if (queue[i].arrival > now)
                    break;
                if (queue[i].proc == proc) {
                    last = proc;
                    return i;
                }
            }
        }
        return 0; // Unreachable: the front is always eligible.
    }

  private:
    std::vector<uint32_t> last_;
    uint32_t num_procs_;
};

} // namespace

std::unique_ptr<MemScheduler>
makeScheduler(const DramConfig &config, uint32_t num_procs)
{
    switch (config.sched) {
      case SchedPolicy::FCFS:
        return std::make_unique<FcfsScheduler>();
      case SchedPolicy::FR_FCFS:
        return std::make_unique<FrFcfsScheduler>();
      case SchedPolicy::FR_BATCH:
        return std::make_unique<FrBatchScheduler>(config.banks,
                                                  config.batch_cap);
      case SchedPolicy::RR_PROC:
        return std::make_unique<RrProcScheduler>(config.banks,
                                                 num_procs);
    }
    throw std::invalid_argument("unknown SchedPolicy");
}

} // namespace dsmem::memsys
