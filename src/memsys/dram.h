#ifndef DSMEM_MEMSYS_DRAM_H
#define DSMEM_MEMSYS_DRAM_H

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "memsys/config.h"
#include "memsys/mem_sched.h"

namespace dsmem::memsys {

/** Per-processor DRAM accounting, folded into CacheStats at run end. */
struct DramAccessStats {
    uint64_t requests = 0;
    uint64_t row_hits = 0;      ///< Open-row reuse (t_cas only).
    uint64_t row_misses = 0;    ///< Row buffer closed (t_rcd + t_cas).
    uint64_t row_conflicts = 0; ///< Wrong row open (+ t_rp precharge).
    uint64_t queue_cycles = 0;  ///< Arrival -> dispatch wait.
    uint64_t bus_wait_cycles = 0; ///< Service end -> bus grant wait.
};

/** Per-bank occupancy summary (the figure bench's histogram axis). */
struct DramBankSummary {
    uint64_t requests = 0;
    uint64_t busy_cycles = 0; ///< Cycles the bank was held.
    uint64_t row_hits = 0;
};

/** Whole-run DRAM summary; empty `banks` means the model was off. */
struct DramSummary {
    std::vector<DramBankSummary> banks;
};

/**
 * Cycle-accounted banked DRAM behind the MemScheduler interface.
 *
 * The model is co-simulated with the engine's event loop: misses
 * arrive via enqueue() as the engine executes them, and the engine
 * advances the model (advanceTo) through every dispatch instant that
 * is already in its past before processing the next thread event —
 * so each dispatch decision is made with complete knowledge of all
 * arrivals up to that instant, exactly the information a hardware
 * controller has, and never with knowledge of later ones (the
 * scheduler only sees eligible requests).
 *
 * Timing of one dispatched request at instant `t`
 * (t = max(bank free, oldest pending arrival)):
 *
 *   service  = t_cas                    row hit
 *            = t_rcd + t_cas            row closed (first access)
 *            = t_rp + t_rcd + t_cas     row conflict (wrong row open)
 *   transfer = max(t + service, bus free) .. + bus_cycles
 *   finish   = transfer end + base_latency
 *
 * The bank is held from t until transfer end (it owns the row buffer
 * through the transfer), the single shared bus serializes transfers
 * in dispatch order, and base_latency models the fixed
 * interconnect + directory path the paper's 50-cycle penalty mostly
 * consists of. With row_bytes == 0 row tracking is off and every
 * access costs t_cas — the degenerate configuration the toy
 * `banks`/`bank_occupancy` model is a special case of (see the
 * superset equivalence test).
 *
 * Dispatch processing order across banks is (instant, bank id) —
 * fully deterministic. Each dispatch evaluates the
 * "dram.dispatch" failpoint, the fault-injection boundary of the
 * subsystem.
 */
class DramModel
{
  public:
    static constexpr uint64_t kNever =
        std::numeric_limits<uint64_t>::max();
    static constexpr uint64_t kNoTag = kNever;

    /** A request the model finished; drained by the engine. */
    struct Completion {
        uint64_t tag = 0;      ///< The enqueue() cookie.
        uint64_t finish = 0;   ///< Global cycle the data arrives.
        uint64_t latency = 0;  ///< finish - arrival.
        uint32_t proc = 0;
        bool is_read = false;
    };

    DramModel(const DramConfig &config, uint32_t line_bytes,
              uint32_t num_procs);

    /**
     * Queue a miss for the line with global index @p line_index
     * (line address / line bytes) arriving at @p now. Arrivals must
     * be non-decreasing in @p now (engine time is monotonic).
     */
    void enqueue(uint32_t proc, uint64_t line_index, bool is_read,
                 uint64_t now, uint64_t tag);

    bool idle() const { return pending_ == 0; }

    /**
     * Earliest instant any bank could dispatch its next request, or
     * kNever when nothing is pending. The engine advances the model
     * whenever this falls strictly before its next thread event.
     */
    uint64_t nextDispatchCycle() const;

    /** Dispatch every request whose instant is <= @p limit. */
    void advanceTo(uint64_t limit);

    /** Completions accumulated since the last drain (then cleared). */
    std::vector<Completion> &drainCompletions()
    {
        return completions_;
    }

    const DramAccessStats &procStats(uint32_t proc) const
    {
        return proc_stats_.at(proc);
    }

    DramSummary summary() const;

    const DramConfig &config() const { return config_; }

  private:
    struct Bank {
        std::vector<DramRequest> queue; ///< Sorted (arrival, ticket).
        uint64_t free_at = 0;
        uint64_t open_row = 0;
        bool row_valid = false;
        DramBankSummary stats;
    };

    /** Dispatch instant of @p bank, or kNever with an empty queue. */
    uint64_t bankDispatchCycle(const Bank &bank) const;

    DramConfig config_;
    std::unique_ptr<MemScheduler> sched_;
    std::vector<Bank> banks_;
    std::vector<DramAccessStats> proc_stats_;
    std::vector<Completion> completions_;
    uint64_t lines_per_row_; ///< 0 = row tracking disabled.
    uint64_t bus_free_ = 0;
    uint64_t next_ticket_ = 0;
    size_t pending_ = 0;
};

} // namespace dsmem::memsys

#endif // DSMEM_MEMSYS_DRAM_H
