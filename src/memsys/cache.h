#ifndef DSMEM_MEMSYS_CACHE_H
#define DSMEM_MEMSYS_CACHE_H

#include <cstdint>
#include <vector>

#include "memsys/config.h"
#include "trace/instruction.h"

namespace dsmem::memsys {

using trace::Addr;

/** Coherence state of a line in a processor's cache. */
enum class LineState : uint8_t {
    INVALID,
    SHARED,
    EXCLUSIVE, ///< Clean, sole copy (MESI only).
    MODIFIED,
};

/**
 * A direct-mapped write-back data cache.
 *
 * Pure tag array: the protocol logic lives in MemorySystem, which
 * tells the cache what to install, upgrade, downgrade, or invalidate.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** Line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~line_mask_; }

    /**
     * State of the line containing @p addr (INVALID on tag mismatch).
     * Inline: this tag check is the first step of every simulated
     * reference, and on the phase-1 hit path it is most of the work.
     */
    LineState lookup(Addr addr) const
    {
        const Line &line = lines_[setIndex(addr)];
        if (line.state == LineState::INVALID ||
            line.tag != lineAddr(addr))
            return LineState::INVALID;
        return line.state;
    }

    /**
     * Install the line containing @p addr in @p state, evicting the
     * current occupant of its set if necessary.
     *
     * @param[out] evicted       Line address of the victim, if any.
     * @param[out] evicted_dirty True when the victim was MODIFIED.
     * @return true when a valid line was evicted.
     */
    bool install(Addr addr, LineState state, Addr *evicted,
                 bool *evicted_dirty);

    /** Change the state of a resident line (upgrade or downgrade). */
    void setState(Addr addr, LineState state);

    /** Drop the line containing @p addr (remote invalidation). */
    void invalidate(Addr addr);

    /** True if the line containing @p addr is resident and MODIFIED. */
    bool isDirty(Addr addr) const { return lookup(addr) == LineState::MODIFIED; }

    uint32_t numLines() const { return static_cast<uint32_t>(lines_.size()); }
    const CacheConfig &config() const { return config_; }

    /** Count of currently valid lines (test/diagnostic aid). */
    uint32_t validLineCount() const;

  private:
    struct Line {
        Addr tag = 0;
        LineState state = LineState::INVALID;
    };

    uint32_t setIndex(Addr addr) const
    {
        return (addr >> line_shift_) & set_mask_;
    }

    CacheConfig config_;
    uint32_t line_shift_;
    Addr line_mask_;
    uint32_t set_mask_;
    std::vector<Line> lines_;
};

} // namespace dsmem::memsys

#endif // DSMEM_MEMSYS_CACHE_H
