#ifndef DSMEM_RUNNER_RUNNER_H
#define DSMEM_RUNNER_RUNNER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dsmem::runner {

/** Knobs shared by every runner-driven bench binary. */
struct RunnerOptions {
    unsigned jobs = 0; ///< Worker threads; 0 = hardware_concurrency.
    std::string trace_dir = ".dsmem-cache"; ///< "" disables the store.

    /** jobs with the 0 default resolved. */
    unsigned resolvedJobs() const;
};

/**
 * A fixed-size worker pool executing an experiment campaign's job
 * graph. Jobs are plain closures; dependency edges are expressed by
 * having a finished job submit() its dependents (phase-2 timing runs
 * are enqueued by their trace's phase-1 job the moment the trace
 * lands — no global barrier between phases). wait() drains the graph.
 *
 * Scheduling order is unspecified; callers must make results
 * order-independent (each job writes its own pre-allocated slot).
 */
class Runner
{
  public:
    explicit Runner(unsigned jobs);
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Enqueue a job; safe to call from inside a running job. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job (including jobs submitted by
     * running jobs) has finished.
     */
    void wait();

    unsigned jobs() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable work_cv_;  ///< Queue became non-empty.
    std::condition_variable idle_cv_;  ///< pending_ hit zero.
    size_t pending_ = 0;               ///< Queued + running jobs.
    bool stop_ = false;
};

} // namespace dsmem::runner

#endif // DSMEM_RUNNER_RUNNER_H
