#ifndef DSMEM_RUNNER_RUNNER_H
#define DSMEM_RUNNER_RUNNER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/sampling.h"
#include "sim/stream_exec.h"

namespace dsmem::runner {

/** Knobs shared by every runner-driven bench binary. */
struct RunnerOptions {
    unsigned jobs = 0; ///< Worker threads; 0 = hardware_concurrency.
    std::string trace_dir = ".dsmem-cache"; ///< "" disables the store.

    /**
     * Fault-tolerance policy (see DESIGN.md "Failure model").
     * Transient faults (util::IoError) retry up to max_attempts with
     * capped exponential backoff; anything else fails the unit
     * permanently. The backoff jitter is a hash of the failing work
     * item and attempt number — never wall clock — so retry schedules
     * replay deterministically.
     */
    unsigned max_attempts = 3;
    unsigned backoff_base_ms = 10;
    unsigned backoff_cap_ms = 1000;

    /**
     * Per-job wall-clock budget in milliseconds; a job that finishes
     * over budget is marked failed and its result discarded. 0
     * disables the watchdog.
     */
    unsigned job_timeout_ms = 0;

    /** Campaign journal path; "" disables journalling. */
    std::string journal_path;
    /** Replay journal_path and re-run only the missing work. */
    bool resume = false;

    /**
     * Fuse same-family DS rows into window sweeps (sim::planPhase2).
     * Results are bit-identical either way — this is the measurement
     * kill-switch (bench --no-fuse) and an escape hatch.
     */
    bool fuse_sweeps = true;

    /**
     * SMARTS-style statistical sampling for phase-2 DS cells
     * (sim::SamplingPlan). Disabled by default (period == 0): every
     * row runs exactly and campaign output is byte-identical to
     * builds without the subsystem. When enabled, DS rows report a
     * scaled estimate with a 95% CI and the plan's parameters join
     * the campaign signature and the live-point store key.
     */
    sim::SamplingPlan sampling;

    /**
     * Canonicalize the JSON export to its deterministic projection:
     * wall-clock fields zeroed, jobs/trace_dir/file/origin blanked,
     * absorbed-error records and phase-1 aggregate counters omitted.
     * Two runs of the same declaration set — any job count, any
     * worker count, chaos or clean, resumed or not — then export
     * byte-identically. The multi-process chaos smoke diffs these.
     */
    bool stable_json = false;

    /**
     * Garbage-collect the trace store before running: prune
     * quarantined *.corrupt.* corpses, orphaned temp files, and
     * stale bundles older than store_gc_age_s, never touching this
     * campaign's own bundles (see TraceStore::gc).
     */
    bool store_gc = false;
    uint64_t store_gc_age_s = 7 * 24 * 3600;

    /**
     * Streaming-executor residency policy (sim/stream_exec.h): when
     * the store loads a bundle whose flat view would spill the LLC
     * (Auto) or always (On), the trace stays chunk-compressed and
     * phase-2 DS sweeps stream decode-ahead tiles out of it instead
     * of a flat SoA pass — same results, a fraction of the resident
     * bytes. Off restores the unconditional flat view. The default
     * honors DSMEM_STREAM_EXEC; CLI --stream-exec overrides it.
     */
    sim::StreamExec stream_exec = sim::streamExecFromEnv();

    /** jobs with the 0 default resolved. */
    unsigned resolvedJobs() const;
};

/**
 * A fixed-size worker pool executing an experiment campaign's job
 * graph. Jobs are plain closures; dependency edges are expressed by
 * having a finished job submit() its dependents (phase-2 timing runs
 * are enqueued by their trace's phase-1 job the moment the trace
 * lands — no global barrier between phases). wait() drains the graph.
 *
 * Scheduling order is unspecified; callers must make results
 * order-independent (each job writes its own pre-allocated slot).
 */
class Runner
{
  public:
    explicit Runner(unsigned jobs);
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Enqueue a job; safe to call from inside a running job. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job (including jobs submitted by
     * running jobs) has finished.
     */
    void wait();

    unsigned jobs() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Called (possibly concurrently) for every exception that escapes
     * a job. Install before submitting. Campaign-managed jobs catch
     * their own failures; this is the pool's last line of defense —
     * without it an escaped exception would std::terminate the worker
     * and strand wait() forever.
     */
    void setUncaughtHandler(std::function<void(const std::string &)> h)
    {
        on_uncaught_ = std::move(h);
    }

    /** Number of jobs whose exception escaped to the pool. */
    uint64_t uncaughtErrors() const
    {
        return uncaught_.load(std::memory_order_relaxed);
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable work_cv_;  ///< Queue became non-empty.
    std::condition_variable idle_cv_;  ///< pending_ hit zero.
    size_t pending_ = 0;               ///< Queued + running jobs.
    bool stop_ = false;
    std::function<void(const std::string &)> on_uncaught_;
    std::atomic<uint64_t> uncaught_{0};
};

} // namespace dsmem::runner

#endif // DSMEM_RUNNER_RUNNER_H
