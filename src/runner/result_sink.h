#ifndef DSMEM_RUNNER_RESULT_SINK_H
#define DSMEM_RUNNER_RESULT_SINK_H

#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.h"
#include "memsys/dram.h"

namespace dsmem::runner {

/** Provenance and cost of one phase-1 trace the campaign touched. */
struct TraceRecord {
    std::string app;
    uint32_t hit_latency = 1;
    uint32_t miss_latency = 50;
    std::string protocol; ///< "MSI" / "MESI".
    uint32_t banks = 0;
    bool small = false;
    std::string origin;   ///< "generated" / "disk" / "memory".
    std::string file;     ///< On-disk path ("" when store disabled).
    uint64_t instructions = 0;
    double wall_ms = 0.0;

    /**
     * Where wall_ms went: running the phase-1 multiprocessor
     * simulation and/or deserializing the bundle from the store.
     * Both stay zero when the bundle was already memoized in-process.
     */
    double gen_ms = 0.0;
    double load_ms = 0.0;

    /**
     * Contention accounting, emitted only when the generating
     * MemoryConfig enabled the corresponding model — a contention-free
     * export stays byte-identical to pre-contention builds.
     * `has_contention` gates the toy bank model's queueing counter;
     * `has_dram` gates the DRAM block (geometry + scheduler + the
     * traced processor's DramAccessStats).
     */
    bool has_contention = false;
    uint64_t contention_cycles = 0;
    bool has_dram = false;
    uint32_t dram_banks = 0;
    uint32_t dram_row_bytes = 0;
    std::string dram_sched;
    memsys::DramAccessStats dram_stats;
};

/** One phase-2 timing run: the unit of the JSON result export. */
struct RunRecord {
    std::string app;
    std::string spec;          ///< ModelSpec::label().
    std::string trace_origin;  ///< Provenance of the trace it timed.
    core::RunResult result;
    double hidden_read = 0.0;  ///< vs. the unit's BASE row (0 if none).
    double wall_ms = 0.0;

    /**
     * Statistical-sampling summary, emitted as a "sampling" JSON
     * member only when has_sampling is set — an exact campaign's
     * export stays byte-identical to pre-sampling builds (the same
     * conditional-extension pattern as TraceRecord's "dram" block).
     */
    bool has_sampling = false;
    uint64_t sample_windows = 0;  ///< K measured windows.
    uint64_t sample_measured = 0; ///< Instructions run detailed.
    double cpi_mean = 0.0;        ///< Mean window CPI.
    double ci95 = 0.0;            ///< Student-t 95% half-width.
};

/**
 * One failure the campaign recorded. Fatal entries correspond to
 * missing runs (the exit-code contract: any fatal error exits
 * non-zero); non-fatal entries are absorbed faults kept for
 * observability (recovered retries, quarantined files, failed cache
 * renames).
 */
struct ErrorRecord {
    std::string app;     ///< "" = campaign-wide (not tied to a unit).
    std::string spec;    ///< "" = unit-wide (phase-1 / store / journal).
    std::string site;    ///< Failing boundary ("phase1", "phase2", ...).
    std::string message;
    int attempts = 1;    ///< Attempts consumed, including the last.
    bool fatal = true;
};

/**
 * Collects every run of a campaign as machine-readable records and
 * exports them as JSON alongside the human-readable tables. Records
 * are appended in declaration order (units, then specs within a
 * unit), so the export is deterministic regardless of worker
 * scheduling; only the wall_ms fields vary between invocations.
 *
 * Schema (documented in EXPERIMENTS.md):
 *   { "schema_version": 1, "bench": ..., "jobs": N,
 *     "trace_dir": ..., "traces": [TraceRecord...],
 *     "runs": [RunRecord...] }
 * plus an "errors": [ErrorRecord...] member, present only when the
 * campaign recorded at least one error — a fault-free export is
 * byte-identical to what pre-error-channel builds produced.
 */
class ResultSink
{
  public:
    void setContext(std::string bench, unsigned jobs,
                    std::string trace_dir);

    void addTrace(TraceRecord record);
    void addRun(RunRecord record);
    void addError(ErrorRecord record);
    void clear();

    const std::vector<TraceRecord> &traces() const { return traces_; }
    const std::vector<RunRecord> &runs() const { return runs_; }
    const std::vector<ErrorRecord> &errors() const { return errors_; }

    void writeJson(std::ostream &os) const;

    /** Write to @p path; returns false (with no throw) on I/O error. */
    bool writeJsonFile(const std::string &path) const;

  private:
    std::string bench_;
    unsigned jobs_ = 0;
    std::string trace_dir_;
    std::vector<TraceRecord> traces_;
    std::vector<RunRecord> runs_;
    std::vector<ErrorRecord> errors_;
};

} // namespace dsmem::runner

#endif // DSMEM_RUNNER_RESULT_SINK_H
