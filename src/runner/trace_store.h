#ifndef DSMEM_RUNNER_TRACE_STORE_H
#define DSMEM_RUNNER_TRACE_STORE_H

#include <iosfwd>
#include <optional>
#include <string>

#include "sim/trace_bundle.h"

namespace dsmem::runner {

/**
 * Version of the on-disk bundle container. Bump whenever the bundle
 * header layout, any serialized stats struct, or the embedded trace
 * format (trace::kTraceFormatVersion) changes meaning; files written
 * under a different version are discarded and regenerated.
 */
inline constexpr uint32_t kBundleFormatVersion = 1;

/** Serialize a full TraceBundle (stats + trace) to @p os. */
void saveBundle(const sim::TraceBundle &bundle, std::ostream &os);

/**
 * Deserialize a bundle. Throws std::runtime_error on bad magic,
 * version mismatch, checksum mismatch, truncation, or a malformed
 * embedded trace.
 */
sim::TraceBundle loadBundle(std::istream &is);

/**
 * Persistent on-disk bundle store, layered under sim::TraceCache.
 *
 * Files live in one cache directory (created on first store) under a
 * content-derived name encoding the app, problem size, the full
 * MemoryConfig, and the format versions — so distinct configurations
 * never collide and a format bump silently invalidates old files.
 * Bundles are written to a temp file and atomically renamed, and
 * every load verifies magic, version, and a whole-payload checksum;
 * anything corrupt, truncated, or version-mismatched is deleted and
 * reported as a miss (the cache regenerates, never trusts).
 */
class TraceStore : public sim::TraceStoreBase
{
  public:
    /** @p dir empty disables the store (every load misses). */
    explicit TraceStore(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** The content-keyed file name a bundle is stored under. */
    static std::string fileName(sim::AppId id,
                                const memsys::MemoryConfig &mem,
                                bool small);

    /** Full path for a key, or "" when disabled. */
    std::string pathFor(sim::AppId id, const memsys::MemoryConfig &mem,
                        bool small) const;

    std::optional<sim::TraceBundle> load(sim::AppId id,
                                         const memsys::MemoryConfig &mem,
                                         bool small) override;
    void store(sim::AppId id, const memsys::MemoryConfig &mem,
               bool small, const sim::TraceBundle &bundle) override;

  private:
    std::string dir_;
};

} // namespace dsmem::runner

#endif // DSMEM_RUNNER_TRACE_STORE_H
