#ifndef DSMEM_RUNNER_TRACE_STORE_H
#define DSMEM_RUNNER_TRACE_STORE_H

#include <filesystem>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/sampling.h"
#include "sim/stream_exec.h"
#include "sim/trace_bundle.h"

namespace dsmem::runner {

/**
 * Version of the on-disk bundle container. Bump whenever the bundle
 * header layout, any serialized stats struct, or the embedded trace
 * format (trace::kTraceFormatVersion) changes meaning.
 *
 * v2 streams: a fixed header (magic, version), then the checksummed
 * region — stats structs as raw u64s, mp_cycles, verified, and the
 * embedded DSMT v2 trace — then a trailing u64 FNV-1a checksum over
 * that region, folded over little-endian 64-bit words (final partial
 * word zero-extended) so verification costs one multiply per 8 bytes
 * instead of v1's one per byte. Both writer and reader fold into the
 * hash as they stream through a block buffer, so peak extra memory is
 * one block rather than one serialized bundle (v1 buffered the whole
 * payload in a std::string to checksum it, and put the checksum in
 * the header).
 *
 * v1 files still load (streamed, checksum verified) and are
 * transparently rewritten as v2 by TraceStore::load/loadView.
 *
 * v3 extends v2 with the DRAM model's accounting: the hashed region
 * gains, between the `verified` byte and the embedded trace, the
 * traced processor's six DramAccessStats counters plus the per-bank
 * summary table. The writer emits v3 *only* for bundles whose DRAM
 * summary is non-empty (i.e. generated with dram.banks > 0) — a
 * default-configuration bundle keeps writing v2, byte-identical to
 * the seed, so enabling the subsystem can never perturb existing
 * caches or golden outputs.
 */
inline constexpr uint32_t kBundleFormatVersion = 2;
inline constexpr uint32_t kBundleFormatVersionDram = 3;

/**
 * Container version bundles for @p mem are stored under: v3 when the
 * DRAM model is active (its stats need the extended layout), v2
 * otherwise. Part of the file name, so the two layouts never collide.
 */
uint32_t bundleVersionFor(const memsys::MemoryConfig &mem);

/** Serialize a full TraceBundle (stats + trace) to @p os as v2. */
void saveBundle(const sim::TraceBundle &bundle, std::ostream &os);

/** Serialize in the legacy v1 container (migration tests / bench). */
void saveBundleV1(const sim::TraceBundle &bundle, std::ostream &os);

/**
 * Deserialize a bundle (v1 or v2). Throws util::FormatError (bad
 * magic, unsupported version, checksum mismatch, truncation, trailing
 * garbage, malformed embedded trace, implausible section size) or
 * util::IoError (stream failure / injected fault) — never crashes or
 * over-allocates on malformed input.
 */
sim::TraceBundle loadBundle(std::istream &is);

/**
 * Deserialize straight into a ViewBundle: a v2 stream decodes its SoA
 * sections directly into TraceView arrays without materializing the
 * AoS trace. Accepts v1 too (decoded AoS, then viewed). Same failure
 * modes as loadBundle.
 */
sim::ViewBundle loadBundleView(std::istream &is);

/**
 * loadBundleView with a streaming-residency policy: the bundle's
 * stats section (decoded before the embedded trace) sizes the flat
 * view, and when sim::shouldStream says it would spill the LLC the
 * trace decodes straight into a chunk-compressed trace::ChunkedView
 * (ViewBundle::chunked, view left null) — the flat SoA columns are
 * never materialized, cutting the loader's peak memory to roughly the
 * compressed trace. StreamExec::Off is exactly the overload above.
 */
sim::ViewBundle loadBundleView(std::istream &is,
                               sim::StreamExec stream_exec);

/**
 * Counters for everything the store did, including the failures it
 * absorbed (the store is a cache: most errors surface as misses plus
 * a counter, not as exceptions).
 */
struct StoreStats {
    uint64_t loads = 0;         ///< load/loadView calls that found a file.
    uint64_t load_hits = 0;     ///< ...that deserialized cleanly.
    uint64_t format_errors = 0; ///< Corrupt files (quarantined).
    uint64_t io_errors = 0;     ///< Transient read faults (rethrown).
    uint64_t stores = 0;        ///< store() calls that tried to write.
    uint64_t store_errors = 0;  ///< ...that failed (bundle not cached).
    uint64_t rename_errors = 0; ///< fs::rename failures, any path.
    uint64_t remove_errors = 0; ///< fs::remove failures, any path.
    uint64_t quarantined = 0;   ///< Files renamed to *.corrupt.*.
    uint64_t migrations = 0;    ///< v1-name files rewritten as v2.
};

/**
 * Policy for TraceStore::gc() — pruning of store garbage that used to
 * accumulate forever across campaigns: quarantined `*.corrupt.*`
 * corpses, orphaned `*.tmp<pid>` writer leftovers, and stale bundles.
 * Anything whose basename appears in @p keep is never touched — the
 * campaign lists its own bundle/live-point names there, so a GC can
 * never eat a file a live journal's resume depends on.
 */
struct StoreGcOptions {
    /** Prune corpses / current-format bundles older than this. */
    uint64_t max_age_s = 7 * 24 * 3600;
    /** Prune `*.tmp<pid>` leftovers older than this (a live writer's
     *  temp file is seconds old; an orphan survives its process). */
    uint64_t tmp_age_s = 3600;
    /** Keep at most this many newest corpses per bundle name
     *  (matches TraceStore::kMaxQuarantinePerName). */
    int max_corrupt_per_name = 4;
    /** Basenames never pruned (the campaign's own keys). */
    std::vector<std::string> keep;
};

/** What one gc() pass did. */
struct StoreGcStats {
    uint64_t scanned = 0;         ///< Regular files examined.
    uint64_t removed_corrupt = 0; ///< Quarantine corpses pruned.
    uint64_t removed_stale = 0;   ///< Stale/aged bundles pruned.
    uint64_t removed_tmp = 0;     ///< Orphaned temp files pruned.
    uint64_t kept = 0;            ///< Protected by the keep list.
    uint64_t errors = 0;          ///< stat/remove failures (absorbed).
};

/**
 * Persistent on-disk bundle store, layered under sim::TraceCache.
 *
 * Files live in one cache directory (created on first store) under a
 * content-derived name encoding the app, problem size, the full
 * MemoryConfig, and the format versions — so distinct configurations
 * never collide and a format bump silently invalidates old files.
 * The one deliberate exception: a load that misses under the current
 * versions also probes the v1 name, and a v1 hit is rewritten in
 * place as v2 (the legacy file is then removed), so existing caches
 * survive the format bump without regeneration.
 *
 * Bundles are written to a temp file and atomically renamed, and
 * every load verifies magic, version, and a whole-payload checksum.
 *
 * Failure handling: corrupt, truncated, or version-mismatched files
 * (util::FormatError) are *quarantined* — renamed to
 * `<name>.corrupt.<ts>` for post-mortem, bounded per name so repeat
 * corruption cannot fill the disk — and reported as a miss (the
 * cache regenerates, never trusts). Transient read faults
 * (util::IoError) are rethrown so the campaign's retry policy can
 * re-attempt them. Filesystem errors the store absorbs (failed
 * renames/removes, failed writes) are counted in StoreStats and
 * surfaced through the error-reporting channel.
 */
class TraceStore : public sim::TraceStoreBase
{
  public:
    /** Called for every absorbed failure: (site, message). */
    using ErrorHandler =
        std::function<void(const std::string &, const std::string &)>;

    /** @p dir empty disables the store (every load misses). */
    explicit TraceStore(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Install the error channel. Set before sharing the store across
     * threads; the handler itself may be called concurrently.
     */
    void setErrorHandler(ErrorHandler handler)
    {
        on_error_ = std::move(handler);
    }

    /**
     * Streaming-residency policy loadView applies to every bundle it
     * deserializes (default Off: always the flat view). Set before
     * sharing the store across threads.
     */
    void setStreamExec(sim::StreamExec mode) { stream_exec_ = mode; }
    sim::StreamExec streamExec() const { return stream_exec_; }

    /** Snapshot of the failure/activity counters. */
    StoreStats stats() const
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        return stats_;
    }

    /** The content-keyed file name a bundle is stored under. */
    static std::string fileName(sim::AppId id,
                                const memsys::MemoryConfig &mem,
                                bool small);

    /** The v1-era name the same key was stored under (migration). */
    static std::string legacyFileName(sim::AppId id,
                                      const memsys::MemoryConfig &mem,
                                      bool small);

    /** Full path for a key, or "" when disabled. */
    std::string pathFor(sim::AppId id, const memsys::MemoryConfig &mem,
                        bool small) const;

    std::optional<sim::TraceBundle> load(sim::AppId id,
                                         const memsys::MemoryConfig &mem,
                                         bool small) override;
    std::optional<sim::ViewBundle>
    loadView(sim::AppId id, const memsys::MemoryConfig &mem,
             bool small) override;
    void store(sim::AppId id, const memsys::MemoryConfig &mem,
               bool small, const sim::TraceBundle &bundle) override;

    /**
     * The content-keyed name a sampling plan's live points are stored
     * under: the bundle stem plus every plan parameter (all four enter
     * the window positions or the offset hash) and the live-point
     * format version. Distinct plans never collide, and plain bundle
     * names are untouched — a sampling-off campaign cannot create,
     * read, or invalidate any of these files.
     */
    static std::string livePointFileName(sim::AppId id,
                                         const memsys::MemoryConfig &mem,
                                         bool small,
                                         const sim::SamplingPlan &plan);

    /** Full path for a live-point key, or "" when disabled. */
    std::string livePointPathFor(sim::AppId id,
                                 const memsys::MemoryConfig &mem,
                                 bool small,
                                 const sim::SamplingPlan &plan) const;

    /**
     * Load the cached live points for (trace key, plan). Same failure
     * contract as load(): a corrupt or plan-mismatched file is
     * quarantined and reported as a miss, a transient read fault
     * (util::IoError) is rethrown for the campaign's retry policy.
     */
    std::optional<sim::LivePointSet>
    loadLivePoints(sim::AppId id, const memsys::MemoryConfig &mem,
                   bool small, const sim::SamplingPlan &plan);

    /**
     * Persist @p set for (trace key, plan); tmp-file + atomic rename,
     * failures absorbed into StoreStats like store().
     */
    void storeLivePoints(sim::AppId id, const memsys::MemoryConfig &mem,
                         bool small, const sim::SamplingPlan &plan,
                         const sim::LivePointSet &set);

    /** Max `*.corrupt.*` siblings kept per bundle name. */
    static constexpr int kMaxQuarantinePerName = 4;

    /**
     * One bounded-garbage pass over the store directory (the
     * --store-gc satellite): prune quarantine corpses past
     * max_corrupt_per_name or max_age_s, orphaned temp files past
     * tmp_age_s, bundles/live-point files of a *stale format version*
     * (their name can never be opened by this build again), and
     * current-format files older than max_age_s. Files named in
     * opts.keep, and anything the store does not recognize, are left
     * alone. Failures are absorbed into the returned stats.
     */
    StoreGcStats gc(const StoreGcOptions &opts);

  private:
    /**
     * Open the bundle for @p key, migrating a v1-named file to the
     * current name first if that is the only one present. Returns the
     * path to read, or "" when neither exists.
     */
    std::string resolve(sim::AppId id, const memsys::MemoryConfig &mem,
                        bool small);

    /** Record + report an absorbed failure. */
    void note(const char *site, const std::string &message,
              uint64_t StoreStats::*counter);
    void bump(uint64_t StoreStats::*counter);

    /** fs::remove with ec surfacing; true when the file is gone. */
    bool removeFile(const std::filesystem::path &path, const char *site);
    /** fs::rename with ec surfacing; true on success. */
    bool renameFile(const std::filesystem::path &from,
                    const std::filesystem::path &to, const char *site);

    /**
     * Move a corrupt file aside as `<name>.corrupt.<ts>` (deleted
     * instead once kMaxQuarantinePerName corpses exist for the name).
     */
    void quarantine(const std::filesystem::path &path);

    std::string dir_;
    sim::StreamExec stream_exec_ = sim::StreamExec::Off;
    ErrorHandler on_error_;
    mutable std::mutex stats_mu_;
    StoreStats stats_;
};

} // namespace dsmem::runner

#endif // DSMEM_RUNNER_TRACE_STORE_H
