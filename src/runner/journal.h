#ifndef DSMEM_RUNNER_JOURNAL_H
#define DSMEM_RUNNER_JOURNAL_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.h"
#include "sim/sampling.h"

namespace dsmem::runner {

/** One completed phase-2 row, as recorded in the campaign journal. */
struct JournalRow {
    size_t unit = 0;
    size_t spec = 0;
    std::string label;
    core::RunResult result;
    double wall_ms = 0.0;

    /**
     * Statistical-sampling summary of the row. Journalled (and
     * parsed) only when sampling.sampled is set; rows of an exact
     * campaign serialize byte-identically to pre-sampling builds.
     */
    sim::SampleSummary sampling;
};

/** One unit's phase-1 trace provenance, as recorded in the journal. */
struct JournalTrace {
    size_t unit = 0;
    std::string origin; ///< "generated" / "disk" / "memory".
    uint64_t instructions = 0;
    double wall_ms = 0.0;
    double gen_ms = 0.0;
    double load_ms = 0.0;
};

/**
 * Advisory dispatch-audit record: cell (unit,spec) was leased to a
 * worker under a coordinator epoch. Leases never gate resume — the
 * row record is the only commit record — but they let a resumed
 * coordinator and post-mortem tooling see which worker held which
 * cell when the process died.
 */
struct JournalLease {
    size_t unit = 0;
    size_t spec = 0;
    uint32_t worker = 0; ///< worker slot id
    uint64_t epoch = 0;  ///< coordinator epoch issuing the lease
};

/** Service-layer side channel recovered by replay(). */
struct JournalMeta {
    uint64_t last_epoch = 0;          ///< highest epoch record seen
    std::vector<JournalLease> leases; ///< in append order
};

/**
 * Crash-safe campaign progress journal (the --journal/--resume
 * mechanism).
 *
 * The journal is an append-only JSONL file. The first line is a
 * header naming the campaign and carrying a *signature* — an FNV-1a
 * hash over the full declaration set (bench name, every unit's app,
 * memory configuration, size, and spec labels) — so a journal can
 * never silently resume a campaign it does not belong to. Each
 * subsequent line records one completed piece of work:
 *
 *   {"t":"trace","unit":U,...}   phase-1 trace resolved for unit U
 *   {"t":"row","unit":U,"spec":S,...}  phase-2 row (U,S) finished,
 *                                      with its full RunResult
 *   {"t":"epoch","epoch":E,...}  a (sharded-service) coordinator
 *                                took over this campaign; E increases
 *                                across restarts
 *   {"t":"lease","unit":U,"spec":S,...}  advisory: cell dispatched
 *                                        to a worker (audit only)
 *
 * Durability: every append writes one complete line and fsyncs
 * before returning, so after a crash the file holds a prefix of the
 * completed work plus at most one torn final line. replay() ignores
 * a trailing partial line (and nothing else), which is exactly the
 * crash-consistency the append needs — a record is either fully
 * durable or ignored.
 *
 * A journal write failure is not allowed to take the campaign down:
 * the journal marks itself failed, stops writing, and the campaign
 * surfaces the failure through its error channel while the run
 * completes normally (it just cannot be resumed from this journal).
 */
class CampaignJournal
{
  public:
    CampaignJournal() = default;
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    /**
     * Open @p path for appending, writing the header when the file is
     * new or empty. A non-empty file must already carry a campaign
     * header whose signature matches @p signature — appending this
     * campaign's records into some other campaign's journal would
     * corrupt it, so a mismatch (or an unreadable header) refuses the
     * open. A torn final line left by a crash mid-append is truncated
     * away so the next record starts on a fresh line; otherwise the
     * first append would extend the partial record into a merged line
     * whose first-occurrence field extraction could resurrect it as a
     * syntactically valid chimera row on a later resume.
     *
     * @p resume selects what a matching non-empty journal means:
     * under --resume its records are kept and new ones appended;
     * without it the campaign is restarting from scratch, so the file
     * is truncated and re-headered (stale records would otherwise
     * shadow or duplicate the fresh run's).
     *
     * Returns false with a diagnostic in @p err on failure; the
     * journal stays inactive.
     */
    bool open(const std::string &path, const std::string &bench,
              uint64_t signature, bool resume, std::string *err);

    /**
     * Parse an existing journal. Returns false (diagnostic in @p err)
     * when the file cannot be read or the header's signature does not
     * match @p signature. A trailing torn line is skipped silently;
     * any other malformed line fails the replay (a corrupt journal
     * must not resume into silently wrong results).
     */
    static bool replay(const std::string &path, uint64_t signature,
                       std::vector<JournalRow> &rows,
                       std::vector<JournalTrace> &traces,
                       std::string *err,
                       JournalMeta *meta = nullptr);

    /** Thread-safe, durable appends; no-ops once inactive/failed. */
    void appendTrace(const JournalTrace &t);
    void appendRow(const JournalRow &r);
    /** Coordinator takeover marker (@p workers = initial pool size). */
    void appendEpoch(uint64_t epoch, uint32_t workers);
    void appendLease(const JournalLease &l);

    bool active() const { return fd_ >= 0 && !failed_; }
    /** True when an append failed and journalling shut itself off. */
    bool failed() const { return failed_; }
    /** Message of the first append failure ("" when none). */
    const std::string &failure() const { return failure_; }

    void close();

  private:
    void appendLine(const std::string &line);

    int fd_ = -1;
    std::mutex mu_;
    bool failed_ = false;
    std::string failure_;
};

} // namespace dsmem::runner

#endif // DSMEM_RUNNER_JOURNAL_H
