#include "runner/result_sink.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace dsmem::runner {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

} // namespace

void
ResultSink::setContext(std::string bench, unsigned jobs,
                       std::string trace_dir)
{
    bench_ = std::move(bench);
    jobs_ = jobs;
    trace_dir_ = std::move(trace_dir);
}

void
ResultSink::addTrace(TraceRecord record)
{
    traces_.push_back(std::move(record));
}

void
ResultSink::addRun(RunRecord record)
{
    runs_.push_back(std::move(record));
}

void
ResultSink::addError(ErrorRecord record)
{
    errors_.push_back(std::move(record));
}

void
ResultSink::clear()
{
    traces_.clear();
    runs_.clear();
    errors_.clear();
}

void
ResultSink::writeJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"schema_version\": 1,\n";
    os << "  \"bench\": \"" << jsonEscape(bench_) << "\",\n";
    os << "  \"jobs\": " << jobs_ << ",\n";
    os << "  \"trace_dir\": \"" << jsonEscape(trace_dir_) << "\",\n";

    os << "  \"traces\": [";
    for (size_t i = 0; i < traces_.size(); ++i) {
        const TraceRecord &t = traces_[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"app\": \"" << jsonEscape(t.app) << "\""
           << ", \"hit_latency\": " << t.hit_latency
           << ", \"miss_latency\": " << t.miss_latency
           << ", \"protocol\": \"" << jsonEscape(t.protocol) << "\""
           << ", \"banks\": " << t.banks
           << ", \"small\": " << (t.small ? "true" : "false")
           << ", \"origin\": \"" << jsonEscape(t.origin) << "\""
           << ", \"file\": \"" << jsonEscape(t.file) << "\""
           << ", \"instructions\": " << t.instructions
           << ", \"wall_ms\": " << jsonDouble(t.wall_ms)
           << ", \"gen_ms\": " << jsonDouble(t.gen_ms)
           << ", \"load_ms\": " << jsonDouble(t.load_ms);
        // Contention members appear only for traces generated with
        // the corresponding model on: default exports stay
        // byte-identical to builds without them.
        if (t.has_contention)
            os << ", \"contention_cycles\": " << t.contention_cycles;
        if (t.has_dram) {
            const memsys::DramAccessStats &d = t.dram_stats;
            os << ", \"dram\": {\"banks\": " << t.dram_banks
               << ", \"row_bytes\": " << t.dram_row_bytes
               << ", \"sched\": \"" << jsonEscape(t.dram_sched) << "\""
               << ", \"requests\": " << d.requests
               << ", \"row_hits\": " << d.row_hits
               << ", \"row_misses\": " << d.row_misses
               << ", \"row_conflicts\": " << d.row_conflicts
               << ", \"queue_cycles\": " << d.queue_cycles
               << ", \"bus_wait_cycles\": " << d.bus_wait_cycles
               << "}";
        }
        os << "}";
    }
    os << (traces_.empty() ? "]" : "\n  ]") << ",\n";

    os << "  \"runs\": [";
    for (size_t i = 0; i < runs_.size(); ++i) {
        const RunRecord &r = runs_[i];
        const core::Breakdown &bd = r.result.breakdown;
        os << (i ? ",\n    " : "\n    ");
        os << "{\"app\": \"" << jsonEscape(r.app) << "\""
           << ", \"spec\": \"" << jsonEscape(r.spec) << "\""
           << ", \"trace_origin\": \"" << jsonEscape(r.trace_origin)
           << "\""
           << ", \"cycles\": " << r.result.cycles
           << ", \"busy\": " << bd.busy
           << ", \"sync\": " << bd.sync
           << ", \"read\": " << bd.read
           << ", \"write\": " << bd.write
           << ", \"pipeline\": " << bd.pipeline
           << ", \"instructions\": " << r.result.instructions
           << ", \"branches\": " << r.result.branches
           << ", \"mispredicts\": " << r.result.mispredicts
           << ", \"read_misses\": " << r.result.read_misses
           << ", \"hidden_read\": " << jsonDouble(r.hidden_read)
           << ", \"wall_ms\": " << jsonDouble(r.wall_ms);
        // Present only for rows a sampling plan estimated: the
        // sampling-off export stays byte-identical.
        if (r.has_sampling)
            os << ", \"sampling\": {\"windows\": " << r.sample_windows
               << ", \"measured\": " << r.sample_measured
               << ", \"cpi_mean\": " << jsonDouble(r.cpi_mean)
               << ", \"ci95\": " << jsonDouble(r.ci95) << "}";
        os << "}";
    }
    os << (runs_.empty() ? "]" : "\n  ]");

    // Only a campaign that recorded errors emits the member at all:
    // the fault-free export stays byte-identical across versions.
    if (!errors_.empty()) {
        os << ",\n  \"errors\": [";
        for (size_t i = 0; i < errors_.size(); ++i) {
            const ErrorRecord &e = errors_[i];
            os << (i ? ",\n    " : "\n    ");
            os << "{\"app\": \"" << jsonEscape(e.app) << "\""
               << ", \"spec\": \"" << jsonEscape(e.spec) << "\""
               << ", \"site\": \"" << jsonEscape(e.site) << "\""
               << ", \"message\": \"" << jsonEscape(e.message) << "\""
               << ", \"attempts\": " << e.attempts
               << ", \"fatal\": " << (e.fatal ? "true" : "false")
               << "}";
        }
        os << "\n  ]";
    }
    os << "\n";
    os << "}\n";
}

bool
ResultSink::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    writeJson(os);
    return static_cast<bool>(os);
}

} // namespace dsmem::runner
