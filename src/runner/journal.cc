#include "runner/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "util/failpoint.h"

namespace dsmem::runner {

namespace {

constexpr uint32_t kJournalVersion = 1;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

/**
 * Round-trip-exact double rendering for *result* fields (sampling
 * statistics): a resumed campaign must restore the bit-identical
 * value, where jsonDouble()'s 6 fixed digits are only fit for
 * wall-clock noise. max_digits10 defaultfloat never prints nan/inf
 * for finite values and parses back through getDouble()'s strtod.
 */
std::string
jsonDoubleExact(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/**
 * Minimal field extraction for the journal's own line grammar: every
 * line was written by this file, keys are unique per line, and string
 * values are jsonEscape()d. This is not a general JSON parser and
 * does not need to be — anything it cannot read is a corrupt journal.
 */
bool
findRaw(const std::string &line, const char *key, size_t &pos)
{
    std::string needle = std::string("\"") + key + "\":";
    size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    pos = at + needle.size();
    return true;
}

bool
getU64(const std::string &line, const char *key, uint64_t &out)
{
    size_t pos;
    if (!findRaw(line, key, pos))
        return false;
    // strtoull silently skips whitespace and wraps a '-' sign
    // ("-1" -> UINT64_MAX); every number this file writes starts
    // with a digit, so anything else is a corrupt journal.
    if (pos >= line.size() || line[pos] < '0' || line[pos] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(line.c_str() + pos, &end, 10);
    if (end == line.c_str() + pos || errno != 0)
        return false;
    out = v;
    return true;
}

bool
getDouble(const std::string &line, const char *key, double &out)
{
    size_t pos;
    if (!findRaw(line, key, pos))
        return false;
    // jsonDouble() writes fixed notation, so a valid value is
    // [-]digits[.digits] — reject nan/inf/whitespace up front.
    size_t first = pos;
    if (first < line.size() && line[first] == '-')
        ++first;
    if (first >= line.size() || line[first] < '0' || line[first] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(line.c_str() + pos, &end);
    if (end == line.c_str() + pos || errno != 0)
        return false;
    out = v;
    return true;
}

bool
getString(const std::string &line, const char *key, std::string &out)
{
    size_t pos;
    if (!findRaw(line, key, pos))
        return false;
    if (pos >= line.size() || line[pos] != '"')
        return false;
    ++pos;
    out.clear();
    while (pos < line.size() && line[pos] != '"') {
        char c = line[pos];
        if (c == '\\') {
            if (pos + 1 >= line.size())
                return false;
            char esc = line[pos + 1];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 5 >= line.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = line[pos + 2 + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else
                        return false;
                }
                out += static_cast<char>(code);
                pos += 4;
                break;
              }
              default:
                return false;
            }
            pos += 2;
        } else {
            out += c;
            ++pos;
        }
    }
    return pos < line.size();
}

std::string
formatRow(const JournalRow &r)
{
    const core::Breakdown &bd = r.result.breakdown;
    std::ostringstream os;
    os << "{\"t\":\"row\",\"unit\":" << r.unit
       << ",\"spec\":" << r.spec << ",\"label\":\""
       << jsonEscape(r.label) << "\",\"cycles\":" << r.result.cycles
       << ",\"busy\":" << bd.busy << ",\"sync\":" << bd.sync
       << ",\"read\":" << bd.read << ",\"write\":" << bd.write
       << ",\"pipeline\":" << bd.pipeline
       << ",\"instructions\":" << r.result.instructions
       << ",\"branches\":" << r.result.branches
       << ",\"mispredicts\":" << r.result.mispredicts
       << ",\"read_misses\":" << r.result.read_misses
       << ",\"wall_ms\":" << jsonDouble(r.wall_ms);
    // Sampling keys appear only on sampled rows, so an exact
    // campaign's journal stays byte-identical to pre-sampling builds.
    if (r.sampling.sampled)
        os << ",\"s_windows\":" << r.sampling.windows
           << ",\"s_measured\":" << r.sampling.measured
           << ",\"s_mean\":" << jsonDoubleExact(r.sampling.cpi_mean)
           << ",\"s_ci\":" << jsonDoubleExact(r.sampling.ci95);
    os << "}";
    return os.str();
}

std::string
formatTrace(const JournalTrace &t)
{
    std::ostringstream os;
    os << "{\"t\":\"trace\",\"unit\":" << t.unit << ",\"origin\":\""
       << jsonEscape(t.origin)
       << "\",\"instructions\":" << t.instructions
       << ",\"wall_ms\":" << jsonDouble(t.wall_ms)
       << ",\"gen_ms\":" << jsonDouble(t.gen_ms)
       << ",\"load_ms\":" << jsonDouble(t.load_ms) << "}";
    return os.str();
}

bool
parseRow(const std::string &line, JournalRow &r)
{
    uint64_t unit, spec;
    if (!getU64(line, "unit", unit) || !getU64(line, "spec", spec) ||
        !getString(line, "label", r.label))
        return false;
    r.unit = static_cast<size_t>(unit);
    r.spec = static_cast<size_t>(spec);
    core::Breakdown &bd = r.result.breakdown;
    if (!(getU64(line, "cycles", r.result.cycles) &&
          getU64(line, "busy", bd.busy) &&
          getU64(line, "sync", bd.sync) &&
          getU64(line, "read", bd.read) &&
          getU64(line, "write", bd.write) &&
          getU64(line, "pipeline", bd.pipeline) &&
          getU64(line, "instructions", r.result.instructions) &&
          getU64(line, "branches", r.result.branches) &&
          getU64(line, "mispredicts", r.result.mispredicts) &&
          getU64(line, "read_misses", r.result.read_misses) &&
          getDouble(line, "wall_ms", r.wall_ms)))
        return false;
    // Sampled rows carry all four s_* keys; a partial set is a
    // corrupt record, not an exact row.
    if (getU64(line, "s_windows", r.sampling.windows)) {
        r.sampling.sampled = true;
        return getU64(line, "s_measured", r.sampling.measured) &&
               getDouble(line, "s_mean", r.sampling.cpi_mean) &&
               getDouble(line, "s_ci", r.sampling.ci95);
    }
    return true;
}

std::string
formatLease(const JournalLease &l)
{
    std::ostringstream os;
    os << "{\"t\":\"lease\",\"unit\":" << l.unit
       << ",\"spec\":" << l.spec << ",\"worker\":" << l.worker
       << ",\"epoch\":" << l.epoch << "}";
    return os.str();
}

bool
parseLease(const std::string &line, JournalLease &l)
{
    uint64_t unit, spec, worker;
    if (!getU64(line, "unit", unit) || !getU64(line, "spec", spec) ||
        !getU64(line, "worker", worker) ||
        !getU64(line, "epoch", l.epoch))
        return false;
    l.unit = static_cast<size_t>(unit);
    l.spec = static_cast<size_t>(spec);
    l.worker = static_cast<uint32_t>(worker);
    return true;
}

bool
parseTrace(const std::string &line, JournalTrace &t)
{
    uint64_t unit;
    if (!getU64(line, "unit", unit) ||
        !getString(line, "origin", t.origin))
        return false;
    t.unit = static_cast<size_t>(unit);
    return getU64(line, "instructions", t.instructions) &&
           getDouble(line, "wall_ms", t.wall_ms) &&
           getDouble(line, "gen_ms", t.gen_ms) &&
           getDouble(line, "load_ms", t.load_ms);
}

/**
 * Truncate a torn final line (no trailing '\n' — a crash mid-append)
 * back to the byte after the last '\n', so the next append starts on
 * a fresh line. Returns the new size, or -1 on I/O error.
 */
off_t
trimTornTail(int fd, off_t size)
{
    char last;
    if (::pread(fd, &last, 1, size - 1) != 1)
        return -1;
    if (last == '\n')
        return size;
    char buf[4096];
    off_t end = size;
    while (end > 0) {
        size_t chunk = static_cast<size_t>(
            std::min<off_t>(end, static_cast<off_t>(sizeof buf)));
        if (::pread(fd, buf, chunk, end - chunk) !=
            static_cast<ssize_t>(chunk))
            return -1;
        for (size_t i = chunk; i > 0; --i) {
            if (buf[i - 1] == '\n') {
                off_t keep = end - chunk + static_cast<off_t>(i);
                if (::ftruncate(fd, keep) != 0)
                    return -1;
                return keep;
            }
        }
        end -= static_cast<off_t>(chunk);
    }
    // No newline anywhere: the whole file is one torn line.
    if (::ftruncate(fd, 0) != 0)
        return -1;
    return 0;
}

/** Read the first '\n'-terminated line (header lines are short). */
bool
readFirstLine(int fd, std::string &line)
{
    char buf[4096];
    ssize_t n = ::pread(fd, buf, sizeof buf, 0);
    if (n <= 0)
        return false;
    const char *nl = static_cast<const char *>(
        std::memchr(buf, '\n', static_cast<size_t>(n)));
    if (!nl)
        return false;
    line.assign(buf, static_cast<size_t>(nl - buf));
    return true;
}

} // namespace

CampaignJournal::~CampaignJournal() { close(); }

bool
CampaignJournal::open(const std::string &path, const std::string &bench,
                      uint64_t signature, bool resume, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    std::error_code fp_ec;
    if (util::failpointEc("journal.open", fp_ec))
        return fail("open " + path + ": " + fp_ec.message());

    // O_RDWR rather than O_WRONLY: opening must read back the header
    // and the tail to validate what it is about to append to.
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return fail("open " + path + ": " +
                    std::string(std::strerror(errno)));

    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size > 0) {
        size = trimTornTail(fd, size);
        if (size < 0) {
            int saved = errno;
            ::close(fd);
            return fail("trim torn tail of " + path + ": " +
                        std::string(std::strerror(saved)));
        }
    }
    if (size > 0) {
        // Appending into someone else's journal would corrupt it, and
        // replay() would only notice if that campaign ever resumed —
        // so the header is checked here, before the first append.
        std::string header, type;
        uint64_t sig = 0;
        if (!readFirstLine(fd, header) ||
            !getString(header, "t", type) || type != "campaign" ||
            !getU64(header, "signature", sig)) {
            ::close(fd);
            return fail("journal " + path +
                        " has no readable campaign header; refusing "
                        "to append");
        }
        if (sig != signature) {
            ::close(fd);
            return fail("journal " + path +
                        " belongs to a different campaign declaration "
                        "(signature mismatch); refusing to append");
        }
        if (!resume) {
            // Same campaign, fresh (non --resume) run: the old
            // records are obsolete and would duplicate the new ones.
            if (::ftruncate(fd, 0) != 0) {
                int saved = errno;
                ::close(fd);
                return fail("truncate stale journal " + path + ": " +
                            std::string(std::strerror(saved)));
            }
            size = 0;
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    fd_ = fd;
    failed_ = false;
    failure_.clear();
    if (size == 0) {
        std::ostringstream os;
        os << "{\"t\":\"campaign\",\"version\":" << kJournalVersion
           << ",\"bench\":\"" << jsonEscape(bench)
           << "\",\"signature\":" << signature << "}";
        appendLine(os.str());
        if (failed_) {
            std::string why = failure_;
            ::close(fd_);
            fd_ = -1;
            return fail("journal header write failed: " + why);
        }
    }
    return true;
}

bool
CampaignJournal::replay(const std::string &path, uint64_t signature,
                        std::vector<JournalRow> &rows,
                        std::vector<JournalTrace> &traces,
                        std::string *err, JournalMeta *meta)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    std::ifstream is(path);
    if (!is)
        return fail("cannot open journal " + path);

    std::string line;
    bool saw_header = false;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        // A torn final append has no trailing '}' (getline strips the
        // '\n' a complete record always ends with before it).
        bool torn = line.back() != '}';
        std::string type;
        if (!torn && !getString(line, "t", type))
            torn = true;
        if (torn) {
            if (is.peek() == std::ifstream::traits_type::eof())
                break; // Tolerated: crash mid-append.
            return fail("corrupt journal line " +
                        std::to_string(lineno) + " in " + path);
        }
        if (type == "campaign") {
            uint64_t sig = 0;
            if (!getU64(line, "signature", sig))
                return fail("journal header missing signature: " +
                            path);
            if (sig != signature)
                return fail(
                    "journal " + path +
                    " belongs to a different campaign declaration "
                    "(signature mismatch); refusing to resume");
            saw_header = true;
        } else if (!saw_header) {
            // The signature gate only means something if it is
            // checked before any data is accepted; a header buried
            // later in a corrupt/concatenated file must not
            // retroactively bless earlier records.
            return fail("journal " + path +
                        " does not start with a campaign header "
                        "(line " + std::to_string(lineno) + ")");
        } else if (type == "row") {
            JournalRow r;
            if (!parseRow(line, r))
                return fail("corrupt row record at line " +
                            std::to_string(lineno) + " in " + path);
            rows.push_back(std::move(r));
        } else if (type == "trace") {
            JournalTrace t;
            if (!parseTrace(line, t))
                return fail("corrupt trace record at line " +
                            std::to_string(lineno) + " in " + path);
            traces.push_back(std::move(t));
        } else if (type == "epoch") {
            uint64_t e = 0;
            if (!getU64(line, "epoch", e))
                return fail("corrupt epoch record at line " +
                            std::to_string(lineno) + " in " + path);
            if (meta && e > meta->last_epoch)
                meta->last_epoch = e;
        } else if (type == "lease") {
            JournalLease l;
            if (!parseLease(line, l))
                return fail("corrupt lease record at line " +
                            std::to_string(lineno) + " in " + path);
            if (meta)
                meta->leases.push_back(l);
        } else {
            return fail("unknown journal record type '" + type +
                        "' at line " + std::to_string(lineno));
        }
    }
    if (!saw_header)
        return fail("journal " + path + " has no campaign header");
    return true;
}

void
CampaignJournal::appendTrace(const JournalTrace &t)
{
    std::lock_guard<std::mutex> lock(mu_);
    appendLine(formatTrace(t));
}

void
CampaignJournal::appendRow(const JournalRow &r)
{
    std::lock_guard<std::mutex> lock(mu_);
    appendLine(formatRow(r));
}

void
CampaignJournal::appendEpoch(uint64_t epoch, uint32_t workers)
{
    std::ostringstream os;
    os << "{\"t\":\"epoch\",\"epoch\":" << epoch
       << ",\"workers\":" << workers << "}";
    std::lock_guard<std::mutex> lock(mu_);
    appendLine(os.str());
}

void
CampaignJournal::appendLease(const JournalLease &l)
{
    std::lock_guard<std::mutex> lock(mu_);
    appendLine(formatLease(l));
}

void
CampaignJournal::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
CampaignJournal::appendLine(const std::string &line)
{
    // Caller holds mu_.
    if (fd_ < 0 || failed_)
        return;
    std::error_code fp_ec;
    if (util::failpointEc("journal.append", fp_ec)) {
        failed_ = true;
        failure_ = "append: " + fp_ec.message();
        return;
    }
    std::string rec = line;
    rec += '\n';
    const char *p = rec.data();
    size_t left = rec.size();
    while (left > 0) {
        ssize_t n = ::write(fd_, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failed_ = true;
            failure_ =
                "append: " + std::string(std::strerror(errno));
            return;
        }
        p += n;
        left -= static_cast<size_t>(n);
    }
    if (::fsync(fd_) != 0) {
        failed_ = true;
        failure_ = "fsync: " + std::string(std::strerror(errno));
    }
}

} // namespace dsmem::runner
