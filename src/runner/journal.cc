#include "runner/journal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "util/failpoint.h"

namespace dsmem::runner {

namespace {

constexpr uint32_t kJournalVersion = 1;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

/**
 * Minimal field extraction for the journal's own line grammar: every
 * line was written by this file, keys are unique per line, and string
 * values are jsonEscape()d. This is not a general JSON parser and
 * does not need to be — anything it cannot read is a corrupt journal.
 */
bool
findRaw(const std::string &line, const char *key, size_t &pos)
{
    std::string needle = std::string("\"") + key + "\":";
    size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    pos = at + needle.size();
    return true;
}

bool
getU64(const std::string &line, const char *key, uint64_t &out)
{
    size_t pos;
    if (!findRaw(line, key, pos))
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(line.c_str() + pos, &end, 10);
    if (end == line.c_str() + pos || errno != 0)
        return false;
    out = v;
    return true;
}

bool
getDouble(const std::string &line, const char *key, double &out)
{
    size_t pos;
    if (!findRaw(line, key, pos))
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(line.c_str() + pos, &end);
    if (end == line.c_str() + pos || errno != 0)
        return false;
    out = v;
    return true;
}

bool
getString(const std::string &line, const char *key, std::string &out)
{
    size_t pos;
    if (!findRaw(line, key, pos))
        return false;
    if (pos >= line.size() || line[pos] != '"')
        return false;
    ++pos;
    out.clear();
    while (pos < line.size() && line[pos] != '"') {
        char c = line[pos];
        if (c == '\\') {
            if (pos + 1 >= line.size())
                return false;
            char esc = line[pos + 1];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 5 >= line.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = line[pos + 2 + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else
                        return false;
                }
                out += static_cast<char>(code);
                pos += 4;
                break;
              }
              default:
                return false;
            }
            pos += 2;
        } else {
            out += c;
            ++pos;
        }
    }
    return pos < line.size();
}

std::string
formatRow(const JournalRow &r)
{
    const core::Breakdown &bd = r.result.breakdown;
    std::ostringstream os;
    os << "{\"t\":\"row\",\"unit\":" << r.unit
       << ",\"spec\":" << r.spec << ",\"label\":\""
       << jsonEscape(r.label) << "\",\"cycles\":" << r.result.cycles
       << ",\"busy\":" << bd.busy << ",\"sync\":" << bd.sync
       << ",\"read\":" << bd.read << ",\"write\":" << bd.write
       << ",\"pipeline\":" << bd.pipeline
       << ",\"instructions\":" << r.result.instructions
       << ",\"branches\":" << r.result.branches
       << ",\"mispredicts\":" << r.result.mispredicts
       << ",\"read_misses\":" << r.result.read_misses
       << ",\"wall_ms\":" << jsonDouble(r.wall_ms) << "}";
    return os.str();
}

std::string
formatTrace(const JournalTrace &t)
{
    std::ostringstream os;
    os << "{\"t\":\"trace\",\"unit\":" << t.unit << ",\"origin\":\""
       << jsonEscape(t.origin)
       << "\",\"instructions\":" << t.instructions
       << ",\"wall_ms\":" << jsonDouble(t.wall_ms)
       << ",\"gen_ms\":" << jsonDouble(t.gen_ms)
       << ",\"load_ms\":" << jsonDouble(t.load_ms) << "}";
    return os.str();
}

bool
parseRow(const std::string &line, JournalRow &r)
{
    uint64_t unit, spec;
    if (!getU64(line, "unit", unit) || !getU64(line, "spec", spec) ||
        !getString(line, "label", r.label))
        return false;
    r.unit = static_cast<size_t>(unit);
    r.spec = static_cast<size_t>(spec);
    core::Breakdown &bd = r.result.breakdown;
    return getU64(line, "cycles", r.result.cycles) &&
           getU64(line, "busy", bd.busy) &&
           getU64(line, "sync", bd.sync) &&
           getU64(line, "read", bd.read) &&
           getU64(line, "write", bd.write) &&
           getU64(line, "pipeline", bd.pipeline) &&
           getU64(line, "instructions", r.result.instructions) &&
           getU64(line, "branches", r.result.branches) &&
           getU64(line, "mispredicts", r.result.mispredicts) &&
           getU64(line, "read_misses", r.result.read_misses) &&
           getDouble(line, "wall_ms", r.wall_ms);
}

bool
parseTrace(const std::string &line, JournalTrace &t)
{
    uint64_t unit;
    if (!getU64(line, "unit", unit) ||
        !getString(line, "origin", t.origin))
        return false;
    t.unit = static_cast<size_t>(unit);
    return getU64(line, "instructions", t.instructions) &&
           getDouble(line, "wall_ms", t.wall_ms) &&
           getDouble(line, "gen_ms", t.gen_ms) &&
           getDouble(line, "load_ms", t.load_ms);
}

} // namespace

CampaignJournal::~CampaignJournal() { close(); }

bool
CampaignJournal::open(const std::string &path, const std::string &bench,
                      uint64_t signature, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    std::error_code fp_ec;
    if (util::failpointEc("journal.open", fp_ec))
        return fail("open " + path + ": " + fp_ec.message());

    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return fail("open " + path + ": " +
                    std::string(std::strerror(errno)));

    off_t size = ::lseek(fd, 0, SEEK_END);
    std::lock_guard<std::mutex> lock(mu_);
    fd_ = fd;
    failed_ = false;
    failure_.clear();
    if (size == 0) {
        std::ostringstream os;
        os << "{\"t\":\"campaign\",\"version\":" << kJournalVersion
           << ",\"bench\":\"" << jsonEscape(bench)
           << "\",\"signature\":" << signature << "}";
        appendLine(os.str());
        if (failed_) {
            std::string why = failure_;
            ::close(fd_);
            fd_ = -1;
            return fail("journal header write failed: " + why);
        }
    }
    return true;
}

bool
CampaignJournal::replay(const std::string &path, uint64_t signature,
                        std::vector<JournalRow> &rows,
                        std::vector<JournalTrace> &traces,
                        std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    std::ifstream is(path);
    if (!is)
        return fail("cannot open journal " + path);

    std::string line;
    bool saw_header = false;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        // A torn final append has no trailing '}' (getline strips the
        // '\n' a complete record always ends with before it).
        bool torn = line.back() != '}';
        std::string type;
        if (!torn && !getString(line, "t", type))
            torn = true;
        if (torn) {
            if (is.peek() == std::ifstream::traits_type::eof())
                break; // Tolerated: crash mid-append.
            return fail("corrupt journal line " +
                        std::to_string(lineno) + " in " + path);
        }
        if (type == "campaign") {
            uint64_t sig = 0;
            if (!getU64(line, "signature", sig))
                return fail("journal header missing signature: " +
                            path);
            if (sig != signature)
                return fail(
                    "journal " + path +
                    " belongs to a different campaign declaration "
                    "(signature mismatch); refusing to resume");
            saw_header = true;
        } else if (type == "row") {
            JournalRow r;
            if (!parseRow(line, r))
                return fail("corrupt row record at line " +
                            std::to_string(lineno) + " in " + path);
            rows.push_back(std::move(r));
        } else if (type == "trace") {
            JournalTrace t;
            if (!parseTrace(line, t))
                return fail("corrupt trace record at line " +
                            std::to_string(lineno) + " in " + path);
            traces.push_back(std::move(t));
        } else {
            return fail("unknown journal record type '" + type +
                        "' at line " + std::to_string(lineno));
        }
    }
    if (!saw_header)
        return fail("journal " + path + " has no campaign header");
    return true;
}

void
CampaignJournal::appendTrace(const JournalTrace &t)
{
    std::lock_guard<std::mutex> lock(mu_);
    appendLine(formatTrace(t));
}

void
CampaignJournal::appendRow(const JournalRow &r)
{
    std::lock_guard<std::mutex> lock(mu_);
    appendLine(formatRow(r));
}

void
CampaignJournal::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
CampaignJournal::appendLine(const std::string &line)
{
    // Caller holds mu_.
    if (fd_ < 0 || failed_)
        return;
    std::error_code fp_ec;
    if (util::failpointEc("journal.append", fp_ec)) {
        failed_ = true;
        failure_ = "append: " + fp_ec.message();
        return;
    }
    std::string rec = line;
    rec += '\n';
    const char *p = rec.data();
    size_t left = rec.size();
    while (left > 0) {
        ssize_t n = ::write(fd_, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failed_ = true;
            failure_ =
                "append: " + std::string(std::strerror(errno));
            return;
        }
        p += n;
        left -= static_cast<size_t>(n);
    }
    if (::fsync(fd_) != 0) {
        failed_ = true;
        failure_ = "fsync: " + std::string(std::strerror(errno));
    }
}

} // namespace dsmem::runner
