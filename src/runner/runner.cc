#include "runner/runner.h"

namespace dsmem::runner {

unsigned
RunnerOptions::resolvedJobs() const
{
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

Runner::Runner(unsigned jobs)
{
    if (jobs == 0)
        jobs = 1;
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Runner::~Runner()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
Runner::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
        ++pending_;
    }
    work_cv_.notify_one();
}

void
Runner::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void
Runner::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        work_cv_.wait(lock,
                      [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return;
            continue;
        }
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        // A job that throws must not take the worker (and with it
        // every queued job plus the wait()er) down with it: capture,
        // report, and keep draining the graph.
        try {
            job();
        } catch (const std::exception &e) {
            uncaught_.fetch_add(1, std::memory_order_relaxed);
            if (on_uncaught_)
                on_uncaught_(e.what());
        } catch (...) {
            uncaught_.fetch_add(1, std::memory_order_relaxed);
            if (on_uncaught_)
                on_uncaught_("non-standard exception");
        }
        lock.lock();
        if (--pending_ == 0)
            idle_cv_.notify_all();
    }
}

} // namespace dsmem::runner
