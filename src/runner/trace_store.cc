#include "runner/trace_store.h"

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "trace/trace_io.h"
#include "util/byte_io.h"

namespace dsmem::runner {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'D', 'S', 'M', 'B'};
constexpr uint32_t kBundleFormatV1 = 1;

void
putStats(util::ByteSink &sink, const trace::TraceStats &s)
{
    for (uint64_t v : {s.instructions, s.reads, s.writes, s.read_misses,
                       s.write_misses, s.branches, s.taken_branches,
                       s.locks, s.unlocks, s.wait_events, s.set_events,
                       s.barriers})
        sink.putU64(v);
}

trace::TraceStats
getStats(util::ByteSource &src)
{
    trace::TraceStats s;
    for (uint64_t *f : {&s.instructions, &s.reads, &s.writes,
                        &s.read_misses, &s.write_misses, &s.branches,
                        &s.taken_branches, &s.locks, &s.unlocks,
                        &s.wait_events, &s.set_events, &s.barriers})
        *f = src.readU64();
    return s;
}

void
putCacheStats(util::ByteSink &sink, const memsys::CacheStats &s)
{
    for (uint64_t v : {s.reads, s.writes, s.read_misses, s.write_misses,
                       s.invalidations_received, s.writebacks,
                       s.contention_cycles})
        sink.putU64(v);
}

memsys::CacheStats
getCacheStats(util::ByteSource &src)
{
    memsys::CacheStats s;
    for (uint64_t *f : {&s.reads, &s.writes, &s.read_misses,
                        &s.write_misses, &s.invalidations_received,
                        &s.writebacks, &s.contention_cycles})
        *f = src.readU64();
    return s;
}

void
putThreadStats(util::ByteSink &sink, const mp::ThreadStats &s)
{
    for (uint64_t v : {s.instructions, s.reads, s.writes, s.read_misses,
                       s.write_misses, s.branches, s.locks, s.unlocks,
                       s.barriers, s.wait_events, s.set_events,
                       s.sync_wait_cycles, s.sync_transfer_cycles})
        sink.putU64(v);
}

mp::ThreadStats
getThreadStats(util::ByteSource &src)
{
    mp::ThreadStats s;
    for (uint64_t *f : {&s.instructions, &s.reads, &s.writes,
                        &s.read_misses, &s.write_misses, &s.branches,
                        &s.locks, &s.unlocks, &s.barriers,
                        &s.wait_events, &s.set_events,
                        &s.sync_wait_cycles, &s.sync_transfer_cycles})
        *f = src.readU64();
    return s;
}

/** Shared preamble of both readers: magic, then the version switch. */
uint32_t
readBundleHeader(util::ByteSource &src)
{
    char magic[4];
    src.read(magic, 4);
    if (std::memcmp(magic, kMagic, 4) != 0)
        throw std::runtime_error("not a dsmem bundle file");
    uint32_t version = src.readU32();
    if (version != kBundleFormatV1 && version != kBundleFormatVersion) {
        throw std::runtime_error("unsupported bundle format version " +
                                 std::to_string(version));
    }
    return version;
}

/**
 * Decode the hashed region's fixed fields (everything before the
 * embedded trace); identical layout in v1 and v2.
 */
void
readBundleFields(util::ByteSource &src, sim::TraceBundle &bundle)
{
    bundle.stats = getStats(src);
    bundle.cache0 = getCacheStats(src);
    bundle.thread0 = getThreadStats(src);
    bundle.mp_cycles = src.readU64();
    bundle.verified = src.readByte() != 0;
}

/**
 * For v1, checksum and payload size live in the header; verify both
 * after the streamed parse consumed the whole hashed region.
 */
void
checkV1Trailer(util::ByteSource &src, uint64_t want_sum,
               uint64_t want_size)
{
    if (src.consumed() != want_size || !src.atEof())
        throw std::runtime_error("bundle payload size mismatch");
    if (src.hashValue() != want_sum)
        throw std::runtime_error("bundle checksum mismatch");
}

/** For v2, the checksum trails the hashed region it covers. */
void
checkV2Trailer(util::ByteSource &src)
{
    uint64_t got = src.hashValue();
    uint64_t want = src.readU64();
    if (got != want)
        throw std::runtime_error("bundle checksum mismatch");
    if (!src.atEof())
        throw std::runtime_error("bundle payload size mismatch");
}

// Legacy (v1) writer helpers: the v1 container is preserved verbatim
// so migration tests and bench_phase1 exercise real v1 bytes.
void
put32(std::ostream &os, uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, 4);
    os.write(buf, 4);
}

void
put64(std::ostream &os, uint64_t v)
{
    char buf[8];
    std::memcpy(buf, &v, 8);
    os.write(buf, 8);
}

std::string
versionedFileName(sim::AppId id, const memsys::MemoryConfig &mem,
                  bool small, uint32_t bundle_ver, uint32_t trace_ver)
{
    std::string app(sim::appName(id));
    for (char &c : app)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));

    std::ostringstream name;
    name << app << (small ? "_small" : "_full") << "_h"
         << mem.hit_latency << "_m" << mem.miss_latency << "_"
         << (mem.protocol == memsys::Protocol::MESI ? "mesi" : "msi")
         << "_b" << mem.banks << "_o" << mem.bank_occupancy << "_v"
         << bundle_ver << "t" << trace_ver << ".dsmb";
    return name.str();
}

} // namespace

void
saveBundle(const sim::TraceBundle &bundle, std::ostream &os)
{
    util::ByteSink sink(os);
    sink.put(kMagic, 4);
    sink.putU32(kBundleFormatVersion);

    sink.beginHash(util::FnvState::Fold::WORDS);
    putStats(sink, bundle.stats);
    putCacheStats(sink, bundle.cache0);
    putThreadStats(sink, bundle.thread0);
    sink.putU64(bundle.mp_cycles);
    sink.putByte(bundle.verified ? 1 : 0);
    trace::saveTrace(bundle.trace, sink);

    sink.putU64(sink.hashValue());
    sink.flush();
}

void
saveBundleV1(const sim::TraceBundle &bundle, std::ostream &os)
{
    // The original format checksummed the payload from the header, so
    // it has to be materialized first — that cost is exactly why v2
    // moved the checksum to a trailer.
    std::ostringstream body;
    {
        util::ByteSink payload_sink(body);
        putStats(payload_sink, bundle.stats);
        putCacheStats(payload_sink, bundle.cache0);
        putThreadStats(payload_sink, bundle.thread0);
        payload_sink.putU64(bundle.mp_cycles);
        payload_sink.putByte(bundle.verified ? 1 : 0);
        trace::saveTraceV1(bundle.trace, payload_sink);
        payload_sink.flush();
    }

    std::string payload = std::move(body).str();
    os.write(kMagic, 4);
    put32(os, kBundleFormatV1);
    put64(os, util::fnv1aUpdate(util::kFnvOffset, payload.data(),
                                payload.size()));
    put64(os, payload.size());
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    if (!os)
        throw std::runtime_error("bundle write failed");
}

sim::TraceBundle
loadBundle(std::istream &is)
{
    util::ByteSource src(is);
    uint32_t version = readBundleHeader(src);

    sim::TraceBundle bundle;
    if (version == kBundleFormatV1) {
        uint64_t want_sum = src.readU64();
        uint64_t want_size = src.readU64();
        src.beginHash();
        readBundleFields(src, bundle);
        bundle.trace = trace::loadTrace(src);
        checkV1Trailer(src, want_sum, want_size);
    } else {
        src.beginHash(util::FnvState::Fold::WORDS);
        readBundleFields(src, bundle);
        bundle.trace = trace::loadTrace(src);
        checkV2Trailer(src);
    }
    return bundle;
}

sim::ViewBundle
loadBundleView(std::istream &is)
{
    util::ByteSource src(is);
    uint32_t version = readBundleHeader(src);

    sim::ViewBundle vb;
    sim::TraceBundle fields;
    if (version == kBundleFormatV1) {
        uint64_t want_sum = src.readU64();
        uint64_t want_size = src.readU64();
        src.beginHash();
        readBundleFields(src, fields);
        vb.view = trace::loadTraceView(src);
        checkV1Trailer(src, want_sum, want_size);
    } else {
        src.beginHash(util::FnvState::Fold::WORDS);
        readBundleFields(src, fields);
        vb.view = trace::loadTraceView(src);
        checkV2Trailer(src);
    }
    vb.stats = fields.stats;
    vb.cache0 = fields.cache0;
    vb.thread0 = fields.thread0;
    vb.mp_cycles = fields.mp_cycles;
    vb.verified = fields.verified;
    return vb;
}

TraceStore::TraceStore(std::string dir) : dir_(std::move(dir)) {}

std::string
TraceStore::fileName(sim::AppId id, const memsys::MemoryConfig &mem,
                     bool small)
{
    return versionedFileName(id, mem, small, kBundleFormatVersion,
                             trace::kTraceFormatVersion);
}

std::string
TraceStore::legacyFileName(sim::AppId id,
                           const memsys::MemoryConfig &mem, bool small)
{
    return versionedFileName(id, mem, small, kBundleFormatV1, 1);
}

std::string
TraceStore::pathFor(sim::AppId id, const memsys::MemoryConfig &mem,
                    bool small) const
{
    if (!enabled())
        return "";
    return (fs::path(dir_) / fileName(id, mem, small)).string();
}

std::string
TraceStore::resolve(sim::AppId id, const memsys::MemoryConfig &mem,
                    bool small)
{
    fs::path path = fs::path(dir_) / fileName(id, mem, small);
    std::error_code ec;
    if (fs::exists(path, ec))
        return path.string();

    // Current-name miss: probe the v1-era name and upgrade in place,
    // so caches written before the format bump stay warm.
    fs::path legacy = fs::path(dir_) / legacyFileName(id, mem, small);
    if (!fs::exists(legacy, ec))
        return "";
    try {
        std::ifstream is(legacy, std::ios::binary);
        if (!is)
            return "";
        sim::TraceBundle bundle = loadBundle(is);
        store(id, mem, small, bundle);
        fs::remove(legacy, ec);
        if (fs::exists(path, ec))
            return path.string();
        return "";
    } catch (const std::exception &) {
        fs::remove(legacy, ec);
        return "";
    }
}

std::optional<sim::TraceBundle>
TraceStore::load(sim::AppId id, const memsys::MemoryConfig &mem,
                 bool small)
{
    if (!enabled())
        return std::nullopt;
    std::string path = resolve(id, mem, small);
    if (path.empty())
        return std::nullopt;
    std::error_code ec;
    try {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return std::nullopt;
        return loadBundle(is);
    } catch (const std::exception &) {
        // Corrupt, truncated, or stale-format file: discard so the
        // regenerated bundle replaces it.
        fs::remove(path, ec);
        return std::nullopt;
    }
}

std::optional<sim::ViewBundle>
TraceStore::loadView(sim::AppId id, const memsys::MemoryConfig &mem,
                     bool small)
{
    if (!enabled())
        return std::nullopt;
    std::string path = resolve(id, mem, small);
    if (path.empty())
        return std::nullopt;
    std::error_code ec;
    try {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return std::nullopt;
        return loadBundleView(is);
    } catch (const std::exception &) {
        fs::remove(path, ec);
        return std::nullopt;
    }
}

void
TraceStore::store(sim::AppId id, const memsys::MemoryConfig &mem,
                  bool small, const sim::TraceBundle &bundle)
{
    if (!enabled())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    fs::path path = fs::path(dir_) / fileName(id, mem, small);
    // Write-then-rename so concurrent readers (or a crash) never see
    // a partial file. Failures are non-fatal: the store is a cache.
    fs::path tmp = path;
    tmp += ".tmp" + std::to_string(::getpid());
    try {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return;
        saveBundle(bundle, os);
        os.close();
        if (!os) {
            fs::remove(tmp, ec);
            return;
        }
        fs::rename(tmp, path, ec);
        if (ec)
            fs::remove(tmp, ec);
    } catch (const std::exception &) {
        fs::remove(tmp, ec);
    }
}

} // namespace dsmem::runner
