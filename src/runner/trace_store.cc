#include "runner/trace_store.h"

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "trace/trace_io.h"

namespace dsmem::runner {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'D', 'S', 'M', 'B'};

/** FNV-1a over the serialized payload; cheap and order-sensitive. */
uint64_t
checksum(const std::string &payload)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : payload) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

void
put32(std::ostream &os, uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, 4);
    os.write(buf, 4);
}

void
put64(std::ostream &os, uint64_t v)
{
    char buf[8];
    std::memcpy(buf, &v, 8);
    os.write(buf, 8);
}

uint64_t
get64(std::istream &is)
{
    char buf[8];
    if (!is.read(buf, 8))
        throw std::runtime_error("bundle file truncated");
    uint64_t v;
    std::memcpy(&v, buf, 8);
    return v;
}

void
putStats(std::ostream &os, const trace::TraceStats &s)
{
    for (uint64_t v : {s.instructions, s.reads, s.writes, s.read_misses,
                       s.write_misses, s.branches, s.taken_branches,
                       s.locks, s.unlocks, s.wait_events, s.set_events,
                       s.barriers})
        put64(os, v);
}

trace::TraceStats
getStats(std::istream &is)
{
    trace::TraceStats s;
    for (uint64_t *f : {&s.instructions, &s.reads, &s.writes,
                        &s.read_misses, &s.write_misses, &s.branches,
                        &s.taken_branches, &s.locks, &s.unlocks,
                        &s.wait_events, &s.set_events, &s.barriers})
        *f = get64(is);
    return s;
}

void
putCacheStats(std::ostream &os, const memsys::CacheStats &s)
{
    for (uint64_t v : {s.reads, s.writes, s.read_misses, s.write_misses,
                       s.invalidations_received, s.writebacks,
                       s.contention_cycles})
        put64(os, v);
}

memsys::CacheStats
getCacheStats(std::istream &is)
{
    memsys::CacheStats s;
    for (uint64_t *f : {&s.reads, &s.writes, &s.read_misses,
                        &s.write_misses, &s.invalidations_received,
                        &s.writebacks, &s.contention_cycles})
        *f = get64(is);
    return s;
}

void
putThreadStats(std::ostream &os, const mp::ThreadStats &s)
{
    for (uint64_t v : {s.instructions, s.reads, s.writes, s.read_misses,
                       s.write_misses, s.branches, s.locks, s.unlocks,
                       s.barriers, s.wait_events, s.set_events,
                       s.sync_wait_cycles, s.sync_transfer_cycles})
        put64(os, v);
}

mp::ThreadStats
getThreadStats(std::istream &is)
{
    mp::ThreadStats s;
    for (uint64_t *f : {&s.instructions, &s.reads, &s.writes,
                        &s.read_misses, &s.write_misses, &s.branches,
                        &s.locks, &s.unlocks, &s.barriers,
                        &s.wait_events, &s.set_events,
                        &s.sync_wait_cycles, &s.sync_transfer_cycles})
        *f = get64(is);
    return s;
}

} // namespace

void
saveBundle(const sim::TraceBundle &bundle, std::ostream &os)
{
    // Serialize the payload first so the header can carry a checksum
    // over all of it.
    std::ostringstream body;
    putStats(body, bundle.stats);
    putCacheStats(body, bundle.cache0);
    putThreadStats(body, bundle.thread0);
    put64(body, bundle.mp_cycles);
    body.put(bundle.verified ? 1 : 0);
    trace::saveTrace(bundle.trace, body);

    std::string payload = std::move(body).str();
    os.write(kMagic, 4);
    put32(os, kBundleFormatVersion);
    put64(os, checksum(payload));
    put64(os, payload.size());
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    if (!os)
        throw std::runtime_error("bundle write failed");
}

sim::TraceBundle
loadBundle(std::istream &is)
{
    char magic[4];
    if (!is.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0)
        throw std::runtime_error("not a dsmem bundle file");
    char vbuf[4];
    if (!is.read(vbuf, 4))
        throw std::runtime_error("bundle file truncated");
    uint32_t version;
    std::memcpy(&version, vbuf, 4);
    if (version != kBundleFormatVersion) {
        throw std::runtime_error("unsupported bundle format version " +
                                 std::to_string(version));
    }
    uint64_t want_sum = get64(is);
    uint64_t want_size = get64(is);

    std::string payload(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (payload.size() != want_size)
        throw std::runtime_error("bundle payload size mismatch");
    if (checksum(payload) != want_sum)
        throw std::runtime_error("bundle checksum mismatch");

    std::istringstream body(payload);
    sim::TraceBundle bundle;
    bundle.stats = getStats(body);
    bundle.cache0 = getCacheStats(body);
    bundle.thread0 = getThreadStats(body);
    bundle.mp_cycles = get64(body);
    int verified = body.get();
    if (verified == std::char_traits<char>::eof())
        throw std::runtime_error("bundle file truncated");
    bundle.verified = verified != 0;
    bundle.trace = trace::loadTrace(body);
    return bundle;
}

TraceStore::TraceStore(std::string dir) : dir_(std::move(dir)) {}

std::string
TraceStore::fileName(sim::AppId id, const memsys::MemoryConfig &mem,
                     bool small)
{
    std::string app(sim::appName(id));
    for (char &c : app)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));

    std::ostringstream name;
    name << app << (small ? "_small" : "_full") << "_h"
         << mem.hit_latency << "_m" << mem.miss_latency << "_"
         << (mem.protocol == memsys::Protocol::MESI ? "mesi" : "msi")
         << "_b" << mem.banks << "_o" << mem.bank_occupancy << "_v"
         << kBundleFormatVersion << "t" << trace::kTraceFormatVersion
         << ".dsmb";
    return name.str();
}

std::string
TraceStore::pathFor(sim::AppId id, const memsys::MemoryConfig &mem,
                    bool small) const
{
    if (!enabled())
        return "";
    return (fs::path(dir_) / fileName(id, mem, small)).string();
}

std::optional<sim::TraceBundle>
TraceStore::load(sim::AppId id, const memsys::MemoryConfig &mem,
                 bool small)
{
    if (!enabled())
        return std::nullopt;
    fs::path path = fs::path(dir_) / fileName(id, mem, small);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return std::nullopt;
    try {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return std::nullopt;
        return loadBundle(is);
    } catch (const std::exception &) {
        // Corrupt, truncated, or stale-format file: discard so the
        // regenerated bundle replaces it.
        fs::remove(path, ec);
        return std::nullopt;
    }
}

void
TraceStore::store(sim::AppId id, const memsys::MemoryConfig &mem,
                  bool small, const sim::TraceBundle &bundle)
{
    if (!enabled())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    fs::path path = fs::path(dir_) / fileName(id, mem, small);
    // Write-then-rename so concurrent readers (or a crash) never see
    // a partial file. Failures are non-fatal: the store is a cache.
    fs::path tmp = path;
    tmp += ".tmp" + std::to_string(::getpid());
    try {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return;
        saveBundle(bundle, os);
        os.close();
        if (!os) {
            fs::remove(tmp, ec);
            return;
        }
        fs::rename(tmp, path, ec);
        if (ec)
            fs::remove(tmp, ec);
    } catch (const std::exception &) {
        fs::remove(tmp, ec);
    }
}

} // namespace dsmem::runner
