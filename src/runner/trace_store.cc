#include "runner/trace_store.h"

#include <cctype>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "trace/trace_io.h"
#include "util/byte_io.h"
#include "util/errors.h"
#include "util/failpoint.h"

namespace dsmem::runner {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'D', 'S', 'M', 'B'};
constexpr uint32_t kBundleFormatV1 = 1;

void
putStats(util::ByteSink &sink, const trace::TraceStats &s)
{
    for (uint64_t v : {s.instructions, s.reads, s.writes, s.read_misses,
                       s.write_misses, s.branches, s.taken_branches,
                       s.locks, s.unlocks, s.wait_events, s.set_events,
                       s.barriers})
        sink.putU64(v);
}

trace::TraceStats
getStats(util::ByteSource &src)
{
    trace::TraceStats s;
    for (uint64_t *f : {&s.instructions, &s.reads, &s.writes,
                        &s.read_misses, &s.write_misses, &s.branches,
                        &s.taken_branches, &s.locks, &s.unlocks,
                        &s.wait_events, &s.set_events, &s.barriers})
        *f = src.readU64();
    return s;
}

void
putCacheStats(util::ByteSink &sink, const memsys::CacheStats &s)
{
    for (uint64_t v : {s.reads, s.writes, s.read_misses, s.write_misses,
                       s.invalidations_received, s.writebacks,
                       s.contention_cycles})
        sink.putU64(v);
}

memsys::CacheStats
getCacheStats(util::ByteSource &src)
{
    memsys::CacheStats s;
    for (uint64_t *f : {&s.reads, &s.writes, &s.read_misses,
                        &s.write_misses, &s.invalidations_received,
                        &s.writebacks, &s.contention_cycles})
        *f = src.readU64();
    return s;
}

void
putThreadStats(util::ByteSink &sink, const mp::ThreadStats &s)
{
    for (uint64_t v : {s.instructions, s.reads, s.writes, s.read_misses,
                       s.write_misses, s.branches, s.locks, s.unlocks,
                       s.barriers, s.wait_events, s.set_events,
                       s.sync_wait_cycles, s.sync_transfer_cycles})
        sink.putU64(v);
}

mp::ThreadStats
getThreadStats(util::ByteSource &src)
{
    mp::ThreadStats s;
    for (uint64_t *f : {&s.instructions, &s.reads, &s.writes,
                        &s.read_misses, &s.write_misses, &s.branches,
                        &s.locks, &s.unlocks, &s.barriers,
                        &s.wait_events, &s.set_events,
                        &s.sync_wait_cycles, &s.sync_transfer_cycles})
        *f = src.readU64();
    return s;
}

void
putDramStats(util::ByteSink &sink, const memsys::DramAccessStats &s)
{
    for (uint64_t v : {s.requests, s.row_hits, s.row_misses,
                       s.row_conflicts, s.queue_cycles,
                       s.bus_wait_cycles})
        sink.putU64(v);
}

memsys::DramAccessStats
getDramStats(util::ByteSource &src)
{
    memsys::DramAccessStats s;
    for (uint64_t *f : {&s.requests, &s.row_hits, &s.row_misses,
                        &s.row_conflicts, &s.queue_cycles,
                        &s.bus_wait_cycles})
        *f = src.readU64();
    return s;
}

void
putDramSummary(util::ByteSink &sink, const memsys::DramSummary &d)
{
    sink.putU32(static_cast<uint32_t>(d.banks.size()));
    for (const memsys::DramBankSummary &b : d.banks) {
        sink.putU64(b.requests);
        sink.putU64(b.busy_cycles);
        sink.putU64(b.row_hits);
    }
}

memsys::DramSummary
getDramSummary(util::ByteSource &src)
{
    uint32_t n = src.readU32();
    // DramConfig::valid caps banks at 1024; anything larger is a
    // corrupt length field, not a bigger machine.
    if (n > 1024)
        throw util::FormatError("implausible DRAM bank count " +
                                std::to_string(n));
    memsys::DramSummary d;
    d.banks.resize(n);
    for (memsys::DramBankSummary &b : d.banks) {
        b.requests = src.readU64();
        b.busy_cycles = src.readU64();
        b.row_hits = src.readU64();
    }
    return d;
}

/** Shared preamble of both readers: magic, then the version switch. */
uint32_t
readBundleHeader(util::ByteSource &src)
{
    char magic[4];
    src.read(magic, 4);
    if (std::memcmp(magic, kMagic, 4) != 0)
        throw util::FormatError("not a dsmem bundle file");
    uint32_t version = src.readU32();
    if (version != kBundleFormatV1 && version != kBundleFormatVersion &&
        version != kBundleFormatVersionDram) {
        throw util::FormatError("unsupported bundle format version " +
                                 std::to_string(version));
    }
    return version;
}

/**
 * Decode the hashed region's fixed fields (everything before the
 * embedded trace). v1 and v2 share one layout; v3 appends the DRAM
 * accounting block after the `verified` byte.
 */
void
readBundleFields(util::ByteSource &src, sim::TraceBundle &bundle,
                 uint32_t version)
{
    bundle.stats = getStats(src);
    bundle.cache0 = getCacheStats(src);
    bundle.thread0 = getThreadStats(src);
    bundle.mp_cycles = src.readU64();
    bundle.verified = src.readByte() != 0;
    if (version >= kBundleFormatVersionDram) {
        bundle.cache0.dram = getDramStats(src);
        bundle.dram = getDramSummary(src);
    }
}

/**
 * For v1, checksum and payload size live in the header; verify both
 * after the streamed parse consumed the whole hashed region.
 */
void
checkV1Trailer(util::ByteSource &src, uint64_t want_sum,
               uint64_t want_size)
{
    if (src.consumed() != want_size || !src.atEof())
        throw util::FormatError("bundle payload size mismatch");
    if (src.hashValue() != want_sum)
        throw util::FormatError("bundle checksum mismatch");
}

/** For v2, the checksum trails the hashed region it covers. */
void
checkV2Trailer(util::ByteSource &src)
{
    uint64_t got = src.hashValue();
    uint64_t want = src.readU64();
    if (got != want)
        throw util::FormatError("bundle checksum mismatch");
    if (!src.atEof())
        throw util::FormatError("bundle payload size mismatch");
}

// Legacy (v1) writer helpers: the v1 container is preserved verbatim
// so migration tests and bench_phase1 exercise real v1 bytes.
void
put32(std::ostream &os, uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, 4);
    os.write(buf, 4);
}

void
put64(std::ostream &os, uint64_t v)
{
    char buf[8];
    std::memcpy(buf, &v, 8);
    os.write(buf, 8);
}

// Keying tripwire: the file name and the campaign signature encode
// MemoryConfig *memberwise*. If this assert fires, a field was added
// to MemoryConfig/DramConfig — extend versionedFileName (and
// Campaign::signature) to include it, then update the expected size.
// Silently compiling on would alias bundles across distinct configs.
static_assert(sizeof(memsys::DramConfig) == 36,
              "DramConfig changed: update versionedFileName + "
              "Campaign::signature, then this size");
static_assert(sizeof(memsys::MemoryConfig) == 56,
              "MemoryConfig changed: update versionedFileName + "
              "Campaign::signature, then this size");

std::string
versionedFileName(sim::AppId id, const memsys::MemoryConfig &mem,
                  bool small, uint32_t bundle_ver, uint32_t trace_ver)
{
    std::string app(sim::appName(id));
    for (char &c : app)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));

    std::ostringstream name;
    name << app << (small ? "_small" : "_full") << "_h"
         << mem.hit_latency << "_m" << mem.miss_latency << "_"
         << (mem.protocol == memsys::Protocol::MESI ? "mesi" : "msi")
         << "_b" << mem.banks << "_o" << mem.bank_occupancy;
    // The DRAM block joins the name only when the model is on, so
    // every pre-existing (dram-off) file keeps its exact seed name.
    if (mem.dram.enabled()) {
        const memsys::DramConfig &d = mem.dram;
        name << "_d" << d.banks << "r" << d.row_bytes << "s"
             << memsys::schedPolicyName(d.sched) << "t" << d.t_rcd
             << "-" << d.t_rp << "-" << d.t_cas << "-" << d.bus_cycles
             << "-" << d.base_latency << "c" << d.batch_cap;
    }
    name << "_v" << bundle_ver << "t" << trace_ver << ".dsmb";
    return name.str();
}

} // namespace

uint32_t
bundleVersionFor(const memsys::MemoryConfig &mem)
{
    return mem.dram.enabled() ? kBundleFormatVersionDram
                              : kBundleFormatVersion;
}

void
saveBundle(const sim::TraceBundle &bundle, std::ostream &os)
{
    // v3 only when there is DRAM accounting to carry; the common
    // (dram-off) case writes the seed's v2 bytes exactly.
    const bool dram = !bundle.dram.banks.empty();
    util::ByteSink sink(os);
    sink.put(kMagic, 4);
    sink.putU32(dram ? kBundleFormatVersionDram : kBundleFormatVersion);

    sink.beginHash(util::FnvState::Fold::WORDS);
    putStats(sink, bundle.stats);
    putCacheStats(sink, bundle.cache0);
    putThreadStats(sink, bundle.thread0);
    sink.putU64(bundle.mp_cycles);
    sink.putByte(bundle.verified ? 1 : 0);
    if (dram) {
        putDramStats(sink, bundle.cache0.dram);
        putDramSummary(sink, bundle.dram);
    }
    trace::saveTrace(bundle.trace, sink);

    sink.putU64(sink.hashValue());
    sink.flush();
}

void
saveBundleV1(const sim::TraceBundle &bundle, std::ostream &os)
{
    // The original format checksummed the payload from the header, so
    // it has to be materialized first — that cost is exactly why v2
    // moved the checksum to a trailer.
    std::ostringstream body;
    {
        util::ByteSink payload_sink(body);
        putStats(payload_sink, bundle.stats);
        putCacheStats(payload_sink, bundle.cache0);
        putThreadStats(payload_sink, bundle.thread0);
        payload_sink.putU64(bundle.mp_cycles);
        payload_sink.putByte(bundle.verified ? 1 : 0);
        trace::saveTraceV1(bundle.trace, payload_sink);
        payload_sink.flush();
    }

    std::string payload = std::move(body).str();
    os.write(kMagic, 4);
    put32(os, kBundleFormatV1);
    put64(os, util::fnv1aUpdate(util::kFnvOffset, payload.data(),
                                payload.size()));
    put64(os, payload.size());
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    if (!os)
        throw util::IoError("bundle write failed");
}

sim::TraceBundle
loadBundle(std::istream &is)
{
    util::ByteSource src(is);
    uint32_t version = readBundleHeader(src);

    sim::TraceBundle bundle;
    if (version == kBundleFormatV1) {
        uint64_t want_sum = src.readU64();
        uint64_t want_size = src.readU64();
        src.beginHash();
        readBundleFields(src, bundle, version);
        bundle.trace = trace::loadTrace(src);
        checkV1Trailer(src, want_sum, want_size);
    } else {
        src.beginHash(util::FnvState::Fold::WORDS);
        readBundleFields(src, bundle, version);
        bundle.trace = trace::loadTrace(src);
        checkV2Trailer(src);
    }
    return bundle;
}

sim::ViewBundle
loadBundleView(std::istream &is)
{
    return loadBundleView(is, sim::StreamExec::Off);
}

sim::ViewBundle
loadBundleView(std::istream &is, sim::StreamExec stream_exec)
{
    util::ByteSource src(is);
    uint32_t version = readBundleHeader(src);

    sim::ViewBundle vb;
    sim::TraceBundle fields;

    // The stats land before the embedded trace, so the residency
    // decision can size the flat view without peeking at the trace
    // section. Sync entries (locks, events, barriers) join
    // stats.instructions to cover every trace record; they are a
    // rounding error against the threshold either way.
    auto decodeTrace = [&] {
        uint64_t entries = fields.stats.instructions +
            fields.stats.locks + fields.stats.unlocks +
            fields.stats.wait_events + fields.stats.set_events +
            fields.stats.barriers;
        if (sim::shouldStream(static_cast<size_t>(entries),
                              stream_exec))
            vb.chunked = trace::loadTraceChunked(src);
        else
            vb.view = trace::loadTraceView(src);
    };

    if (version == kBundleFormatV1) {
        uint64_t want_sum = src.readU64();
        uint64_t want_size = src.readU64();
        src.beginHash();
        readBundleFields(src, fields, version);
        decodeTrace();
        checkV1Trailer(src, want_sum, want_size);
    } else {
        src.beginHash(util::FnvState::Fold::WORDS);
        readBundleFields(src, fields, version);
        decodeTrace();
        checkV2Trailer(src);
    }
    vb.stats = fields.stats;
    vb.cache0 = fields.cache0;
    vb.thread0 = fields.thread0;
    vb.mp_cycles = fields.mp_cycles;
    vb.verified = fields.verified;
    vb.dram = std::move(fields.dram);
    return vb;
}

TraceStore::TraceStore(std::string dir) : dir_(std::move(dir)) {}

std::string
TraceStore::fileName(sim::AppId id, const memsys::MemoryConfig &mem,
                     bool small)
{
    return versionedFileName(id, mem, small, bundleVersionFor(mem),
                             trace::kTraceFormatVersion);
}

std::string
TraceStore::legacyFileName(sim::AppId id,
                           const memsys::MemoryConfig &mem, bool small)
{
    return versionedFileName(id, mem, small, kBundleFormatV1, 1);
}

std::string
TraceStore::pathFor(sim::AppId id, const memsys::MemoryConfig &mem,
                    bool small) const
{
    if (!enabled())
        return "";
    return (fs::path(dir_) / fileName(id, mem, small)).string();
}

void
TraceStore::note(const char *site, const std::string &message,
                 uint64_t StoreStats::*counter)
{
    bump(counter);
    if (on_error_)
        on_error_(site, message);
}

void
TraceStore::bump(uint64_t StoreStats::*counter)
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++(stats_.*counter);
}

bool
TraceStore::removeFile(const fs::path &path, const char *site)
{
    std::error_code ec;
    if (!util::failpointEc("trace_store.remove", ec))
        fs::remove(path, ec);
    if (ec) {
        note(site, "remove " + path.string() + ": " + ec.message(),
             &StoreStats::remove_errors);
        return false;
    }
    return true;
}

bool
TraceStore::renameFile(const fs::path &from, const fs::path &to,
                       const char *site)
{
    std::error_code ec;
    if (!util::failpointEc("trace_store.rename", ec))
        fs::rename(from, to, ec);
    if (ec) {
        note(site,
             "rename " + from.string() + " -> " + to.string() + ": " +
                 ec.message(),
             &StoreStats::rename_errors);
        return false;
    }
    return true;
}

void
TraceStore::quarantine(const fs::path &path)
{
    // Count existing corpses for this name; past the cap a repeatedly
    // corrupted file is deleted instead of archived, so a flaky disk
    // cannot fill itself with .corrupt files.
    const std::string stem = path.filename().string() + ".corrupt.";
    int corpses = 0;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(path.parent_path(), ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(stem, 0) == 0)
            ++corpses;
    }
    if (corpses >= kMaxQuarantinePerName) {
        removeFile(path, "trace_store.quarantine");
        return;
    }
    // Timestamp only names the corpse for post-mortem ordering; it
    // never feeds back into results, so wall clock is fine here.
    auto ts = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count();
    fs::path corpse = path;
    corpse += ".corrupt." + std::to_string(ts);
    if (renameFile(path, corpse, "trace_store.quarantine"))
        bump(&StoreStats::quarantined);
    else
        removeFile(path, "trace_store.quarantine");
}

std::string
TraceStore::resolve(sim::AppId id, const memsys::MemoryConfig &mem,
                    bool small)
{
    fs::path path = fs::path(dir_) / fileName(id, mem, small);
    std::error_code ec;
    if (fs::exists(path, ec))
        return path.string();

    // Current-name miss: probe the v1-era name and upgrade in place,
    // so caches written before the format bump stay warm. Never for a
    // DRAM-enabled key: the v1 name doesn't encode the dram fields,
    // so the probe would alias every dram config onto one stale file.
    if (mem.dram.enabled())
        return "";
    fs::path legacy = fs::path(dir_) / legacyFileName(id, mem, small);
    if (!fs::exists(legacy, ec))
        return "";
    try {
        util::failpoint("trace_store.migrate");
        std::ifstream is(legacy, std::ios::binary);
        if (!is)
            return "";
        sim::TraceBundle bundle = loadBundle(is);
        store(id, mem, small, bundle);
        removeFile(legacy, "trace_store.migrate");
        bump(&StoreStats::migrations);
        if (fs::exists(path, ec))
            return path.string();
        return "";
    } catch (const util::FormatError &e) {
        note("trace_store.migrate", legacy.string() + ": " + e.what(),
             &StoreStats::format_errors);
        quarantine(legacy);
        return "";
    } catch (const util::IoError &) {
        // Transient: leave the legacy file for the retry to find.
        bump(&StoreStats::io_errors);
        throw;
    } catch (const std::exception &e) {
        note("trace_store.migrate", legacy.string() + ": " + e.what(),
             &StoreStats::format_errors);
        quarantine(legacy);
        return "";
    }
}

std::optional<sim::TraceBundle>
TraceStore::load(sim::AppId id, const memsys::MemoryConfig &mem,
                 bool small)
{
    if (!enabled())
        return std::nullopt;
    std::string path = resolve(id, mem, small);
    if (path.empty())
        return std::nullopt;
    bump(&StoreStats::loads);
    try {
        util::failpoint("trace_store.open_read");
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return std::nullopt;
        auto bundle = loadBundle(is);
        bump(&StoreStats::load_hits);
        return bundle;
    } catch (const util::IoError &) {
        // Transient read fault: rethrow so the campaign's retry policy
        // can re-attempt; the on-disk file is presumed intact.
        bump(&StoreStats::io_errors);
        throw;
    } catch (const std::exception &e) {
        // Corrupt, truncated, or stale-format file: quarantine so the
        // regenerated bundle replaces it and the corpse stays around
        // for post-mortem.
        note("trace_store.load", path + ": " + e.what(),
             &StoreStats::format_errors);
        quarantine(path);
        return std::nullopt;
    }
}

std::optional<sim::ViewBundle>
TraceStore::loadView(sim::AppId id, const memsys::MemoryConfig &mem,
                     bool small)
{
    if (!enabled())
        return std::nullopt;
    std::string path = resolve(id, mem, small);
    if (path.empty())
        return std::nullopt;
    bump(&StoreStats::loads);
    try {
        util::failpoint("trace_store.open_read");
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return std::nullopt;
        auto vb = loadBundleView(is, stream_exec_);
        bump(&StoreStats::load_hits);
        return vb;
    } catch (const util::IoError &) {
        bump(&StoreStats::io_errors);
        throw;
    } catch (const std::exception &e) {
        note("trace_store.load", path + ": " + e.what(),
             &StoreStats::format_errors);
        quarantine(path);
        return std::nullopt;
    }
}

std::string
TraceStore::livePointFileName(sim::AppId id,
                              const memsys::MemoryConfig &mem,
                              bool small, const sim::SamplingPlan &plan)
{
    // Stem on the bundle name (minus its .dsmb extension) so the live
    // points sort next to the trace they were warmed from, then key
    // every plan parameter: period/seed feed the offset hash and
    // warmup/detailed trim the tail windows, so all four change the
    // point list.
    std::string stem = fileName(id, mem, small);
    stem.resize(stem.size() - 5); // strip ".dsmb"
    std::ostringstream name;
    name << stem << "_p" << plan.period << "w" << plan.warmup << "d"
         << plan.detailed << "s" << plan.seed << "_lp1.dslp";
    return name.str();
}

std::string
TraceStore::livePointPathFor(sim::AppId id,
                             const memsys::MemoryConfig &mem,
                             bool small,
                             const sim::SamplingPlan &plan) const
{
    if (!enabled())
        return "";
    return (fs::path(dir_) / livePointFileName(id, mem, small, plan))
        .string();
}

std::optional<sim::LivePointSet>
TraceStore::loadLivePoints(sim::AppId id,
                           const memsys::MemoryConfig &mem, bool small,
                           const sim::SamplingPlan &plan)
{
    if (!enabled())
        return std::nullopt;
    fs::path path =
        fs::path(dir_) / livePointFileName(id, mem, small, plan);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return std::nullopt;
    bump(&StoreStats::loads);
    try {
        util::failpoint("dslp.read");
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return std::nullopt;
        sim::LivePointSet set = sim::loadLivePoints(is);
        // The name keys the plan, but the file's own header is what
        // was actually warmed; a disagreement is a corrupt or
        // mis-filed stream, not a cache hit.
        if (set.period != plan.period || set.seed != plan.seed)
            throw util::FormatError(
                "live-point plan fields do not match the file name");
        bump(&StoreStats::load_hits);
        return set;
    } catch (const util::IoError &) {
        bump(&StoreStats::io_errors);
        throw;
    } catch (const std::exception &e) {
        note("trace_store.load", path.string() + ": " + e.what(),
             &StoreStats::format_errors);
        quarantine(path);
        return std::nullopt;
    }
}

void
TraceStore::storeLivePoints(sim::AppId id,
                            const memsys::MemoryConfig &mem, bool small,
                            const sim::SamplingPlan &plan,
                            const sim::LivePointSet &set)
{
    if (!enabled())
        return;
    bump(&StoreStats::stores);
    std::error_code ec;
    fs::create_directories(dir_, ec);
    fs::path path =
        fs::path(dir_) / livePointFileName(id, mem, small, plan);
    fs::path tmp = path;
    tmp += ".tmp" + std::to_string(::getpid());
    try {
        util::failpoint("dslp.write");
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            note("dslp.write", "cannot open " + tmp.string(),
                 &StoreStats::store_errors);
            return;
        }
        sim::saveLivePoints(set, os);
        os.close();
        if (!os) {
            note("dslp.write", "write failed: " + tmp.string(),
                 &StoreStats::store_errors);
            removeFile(tmp, "dslp.write");
            return;
        }
        if (!renameFile(tmp, path, "dslp.write")) {
            bump(&StoreStats::store_errors);
            removeFile(tmp, "dslp.write");
        }
    } catch (const std::exception &e) {
        note("dslp.write", tmp.string() + ": " + e.what(),
             &StoreStats::store_errors);
        removeFile(tmp, "dslp.write");
    }
}

void
TraceStore::store(sim::AppId id, const memsys::MemoryConfig &mem,
                  bool small, const sim::TraceBundle &bundle)
{
    if (!enabled())
        return;
    bump(&StoreStats::stores);
    std::error_code ec;
    fs::create_directories(dir_, ec);
    fs::path path = fs::path(dir_) / fileName(id, mem, small);
    // Write-then-rename so concurrent readers (or a crash) never see
    // a partial file. Failures are non-fatal (the store is a cache)
    // but no longer silent: every one is counted and reported.
    fs::path tmp = path;
    tmp += ".tmp" + std::to_string(::getpid());
    try {
        util::failpoint("trace_store.save");
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            note("trace_store.save", "cannot open " + tmp.string(),
                 &StoreStats::store_errors);
            return;
        }
        saveBundle(bundle, os);
        os.close();
        if (!os) {
            note("trace_store.save", "write failed: " + tmp.string(),
                 &StoreStats::store_errors);
            removeFile(tmp, "trace_store.save");
            return;
        }
        if (!renameFile(tmp, path, "trace_store.save")) {
            bump(&StoreStats::store_errors);
            removeFile(tmp, "trace_store.save");
        }
    } catch (const std::exception &e) {
        note("trace_store.save", tmp.string() + ": " + e.what(),
             &StoreStats::store_errors);
        removeFile(tmp, "trace_store.save");
    }
}

StoreGcStats
TraceStore::gc(const StoreGcOptions &opts)
{
    StoreGcStats g;
    if (!enabled())
        return g;

    std::error_code ec;
    fs::directory_iterator it(dir_, ec);
    if (ec) {
        ++g.errors;
        return g;
    }

    auto kept = [&](const std::string &name) {
        for (const std::string &k : opts.keep)
            if (k == name)
                return true;
        return false;
    };
    // GC decisions use wall-clock ages only to choose *which garbage
    // to drop* — nothing here ever feeds back into results.
    const auto fs_now = fs::file_time_type::clock::now();
    auto ageSeconds = [&](const fs::path &p) -> int64_t {
        std::error_code mec;
        auto mtime = fs::last_write_time(p, mec);
        if (mec)
            return -1;
        return std::chrono::duration_cast<std::chrono::seconds>(
                   fs_now - mtime)
            .count();
    };
    auto prune = [&](const fs::path &p, uint64_t StoreGcStats::*ctr) {
        std::error_code rec;
        if (fs::remove(p, rec) && !rec)
            ++(g.*ctr);
        else
            ++g.errors;
    };

    // The current-format suffixes; a .dsmb/.dslp name without one can
    // never be opened by this build again (resolve() probes only the
    // current and v1-migration names), so it is stale by construction.
    const std::string tver = std::to_string(trace::kTraceFormatVersion);
    const std::string cur_v2 =
        "_v" + std::to_string(kBundleFormatVersion) + "t" + tver +
        ".dsmb";
    const std::string cur_v3 =
        "_v" + std::to_string(kBundleFormatVersionDram) + "t" + tver +
        ".dsmb";
    auto endsWith = [](const std::string &s, const std::string &suf) {
        return s.size() >= suf.size() &&
               s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
    };

    // Corpse census first: count-based pruning keeps the *newest*
    // max_corrupt_per_name per base name, which needs the full group.
    std::vector<std::pair<uint64_t, fs::path>> corpses; // ts, path
    std::vector<std::string> corpse_base;

    for (const fs::directory_entry &entry : it) {
        std::error_code tec;
        if (!entry.is_regular_file(tec) || tec)
            continue;
        ++g.scanned;
        const std::string name = entry.path().filename().string();
        if (kept(name)) {
            ++g.kept;
            continue;
        }

        size_t cpos = name.find(".corrupt.");
        if (cpos != std::string::npos) {
            // quarantine() suffixes a microsecond wall-clock stamp;
            // an unparsable stamp sorts oldest (ts 0) and goes first.
            uint64_t ts = std::strtoull(
                name.c_str() + cpos + std::strlen(".corrupt."),
                nullptr, 10);
            corpses.emplace_back(ts, entry.path());
            corpse_base.push_back(name.substr(0, cpos));
            continue;
        }
        if (name.find(".tmp") != std::string::npos) {
            int64_t age = ageSeconds(entry.path());
            if (age < 0)
                ++g.errors;
            else if (age >= static_cast<int64_t>(opts.tmp_age_s))
                prune(entry.path(), &StoreGcStats::removed_tmp);
            continue;
        }
        const bool dsmb = endsWith(name, ".dsmb");
        const bool dslp = endsWith(name, ".dslp");
        if (!dsmb && !dslp)
            continue; // Not a store file; never touch it.
        const bool current = dsmb
            ? (endsWith(name, cur_v2) || endsWith(name, cur_v3))
            : endsWith(name, "_lp1.dslp");
        if (!current) {
            prune(entry.path(), &StoreGcStats::removed_stale);
            continue;
        }
        int64_t age = ageSeconds(entry.path());
        if (age < 0)
            ++g.errors;
        else if (age >= static_cast<int64_t>(opts.max_age_s))
            prune(entry.path(), &StoreGcStats::removed_stale);
    }

    // Per-base count + age pruning of quarantine corpses.
    const uint64_t now_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    for (size_t i = 0; i < corpses.size(); ++i) {
        // Rank within its base-name group: newer corpses first.
        int newer = 0;
        for (size_t j = 0; j < corpses.size(); ++j)
            if (j != i && corpse_base[j] == corpse_base[i] &&
                (corpses[j].first > corpses[i].first ||
                 (corpses[j].first == corpses[i].first && j < i)))
                ++newer;
        const uint64_t age_s =
            corpses[i].first < now_us
                ? (now_us - corpses[i].first) / 1000000
                : 0;
        if (newer >= opts.max_corrupt_per_name ||
            age_s >= opts.max_age_s)
            prune(corpses[i].second, &StoreGcStats::removed_corrupt);
    }
    return g;
}

} // namespace dsmem::runner
