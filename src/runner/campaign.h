#ifndef DSMEM_RUNNER_CAMPAIGN_H
#define DSMEM_RUNNER_CAMPAIGN_H

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runner/journal.h"
#include "runner/result_sink.h"
#include "runner/runner.h"
#include "runner/trace_store.h"
#include "sim/executor.h"
#include "sim/experiment.h"
#include "sim/trace_bundle.h"

namespace dsmem::runner {

/**
 * One recorded failure inside a campaign unit. Non-fatal entries are
 * absorbed faults (a store rename that failed, a retry that later
 * succeeded); fatal entries mean the unit is missing results.
 */
struct UnitError {
    std::string site;    ///< Failing boundary ("phase1", "phase2", ...).
    std::string message; ///< Exception / error text.
    std::string spec;    ///< Spec label for row failures ("" = unit-wide).
    int attempts = 1;    ///< Attempts consumed, including the last.
    bool fatal = true;
};

/**
 * Results of one campaign unit, in the unit's declared spec order
 * (never in worker completion order — output stays bit-identical to
 * serial execution for any --jobs value).
 */
struct UnitResult {
    const sim::ViewBundle *bundle = nullptr;
    sim::TraceOrigin origin = sim::TraceOrigin::GENERATED;
    double trace_wall_ms = 0.0;        ///< Phase-1 getView() cost.
    sim::TraceTiming trace_timing;     ///< Generate vs load split.
    std::vector<sim::LabelledResult> rows;
    std::vector<double> row_wall_ms;   ///< Per-row timing cost.

    /**
     * Per-row sampling summary (index-matching rows). All entries
     * stay default (sampled == false) when the campaign ran without
     * a sampling plan or the row fell back to an exact run.
     */
    std::vector<sim::SampleSummary> row_sampling;

    /**
     * 1 when rows[s] holds a finished result (run now or restored
     * from the journal); 0 when the row failed or never ran.
     */
    std::vector<uint8_t> row_done;

    /**
     * Trace provenance restored from a journal: the unit skipped
     * phase 1, bundle stays null, and trace_instructions carries what
     * bundle->stats.instructions would have.
     */
    bool trace_from_journal = false;
    uint64_t trace_instructions = 0;

    std::vector<UnitError> errors;
    bool failed = false; ///< Any fatal error (missing rows).
};

/**
 * An experiment campaign: the declarative job graph the bench
 * binaries hand to the worker pool.
 *
 * A *unit* is one (app, MemoryConfig, size) trace timed under a list
 * of ModelSpecs. The campaign deduplicates phase-1 trace generation
 * across units keyed by the full MemoryConfig, executes everything on
 * a fixed-size pool (phase-2 runs for a trace are enqueued the moment
 * that trace lands — traces still generating don't block finished
 * ones), and exposes results in declaration order. Phase 2 re-times
 * an immutable trace, so parallel runs share nothing and results are
 * bit-identical to serial execution.
 *
 * Failure model (DESIGN.md "Failure model"): a job failure never
 * crashes the campaign. Transient faults (util::IoError) retry with
 * deterministic capped backoff; permanent failures mark their unit
 * failed while every other unit completes. With a journal configured
 * (RunnerOptions::journal_path) each completed row is made durable
 * before the campaign moves on, and resume (RunnerOptions::resume)
 * re-executes only the missing work — producing results identical to
 * an uninterrupted run.
 */
class Campaign
{
  public:
    Campaign(std::string bench_name, RunnerOptions opts);

    /** Declare a unit; returns its index. Call before run(). */
    size_t add(sim::AppId app, std::vector<sim::ModelSpec> specs,
               const memsys::MemoryConfig &mem = {},
               bool small = false);

    /** Execute every declared unit; idempotent per declaration set. */
    void run();

    /**
     * One (unit, spec) phase-2 cell: the dispatch granule of the
     * sharded campaign service (stable across processes because both
     * sides hold the same declaration set).
     */
    struct CellRef {
        size_t unit = 0;
        size_t spec = 0;
        friend auto operator<=>(const CellRef &, const CellRef &) =
            default;
    };

    /** Deterministic assignment of pending cells to worker shards. */
    struct ShardPlan {
        std::vector<std::vector<CellRef>> shards;
        size_t cells = 0; ///< Total pending cells across shards.
    };

    /**
     * Phase A of run(): result slots, sampling validation, journal
     * replay (--resume), journal open, optional store GC. Returns
     * false when the campaign is fatally unrunnable — the sink is
     * already filled and run()/the service layer must not execute
     * anything. The sharded coordinator calls prepare()/finish()
     * around its own dispatch loop; run() wraps them around the
     * in-process pool. Calling run() after prepare() would reset
     * state — use one or the other.
     */
    bool prepare();

    /** Phase C of run(): journal failure note, close, sink fill. */
    void finish();

    /** Pending (not journal-restored) cells, declaration order.
     *  Valid after prepare(). */
    std::vector<CellRef> pendingCells() const;

    /**
     * Shard pending cells across @p workers: cells are grouped by
     * phase-1 trace key (one shard resolves each trace once) and
     * groups go to the currently lightest shard, largest first.
     * Deterministic in the declaration set + journal state alone.
     */
    ShardPlan shardPlan(unsigned workers) const;

    /** Declaration accessors for the service layer's wire format. */
    sim::AppId unitApp(size_t u) const { return units_.at(u).app; }
    const memsys::MemoryConfig &unitMem(size_t u) const
    {
        return units_.at(u).mem;
    }
    bool unitSmall(size_t u) const { return units_.at(u).small; }
    const std::vector<sim::ModelSpec> &unitSpecs(size_t u) const
    {
        return units_.at(u).specs;
    }
    const std::string &benchName() const { return bench_name_; }

    /** Outcome of feeding one remote row result into the campaign. */
    enum class Accept {
        OK,        ///< Recorded and journalled.
        DUPLICATE, ///< Already done with the identical result.
        MISMATCH,  ///< Already done with a *different* result.
        BAD_REF,   ///< (unit, spec) outside the declaration set.
    };

    /**
     * Record a phase-2 row computed by a worker process. First result
     * wins: an at-least-once redeliver of the same bits is DUPLICATE
     * (harmless), different bits are MISMATCH (the caller must treat
     * the run as poisoned — two workers disagreed on a deterministic
     * cell). Coordinator-thread only; not safe against run().
     */
    Accept acceptRemoteRow(size_t unit, size_t spec,
                           const core::RunResult &result,
                           const sim::SampleSummary &sampling,
                           double wall_ms);

    /**
     * Record a unit's phase-1 trace provenance as reported by a
     * worker (bundle-less, like a journal-restored unit). First
     * report wins; returns false only for a bad unit/origin.
     */
    bool acceptRemoteTrace(size_t unit, const std::string &origin,
                           uint64_t instructions, double wall_ms,
                           double gen_ms, double load_ms);

    /** Record a worker-reported failure against a cell/unit. */
    void recordRemoteError(size_t unit, const std::string &spec_label,
                           const std::string &site,
                           const std::string &message, bool fatal);

    /**
     * Coordinator fallback: execute one pending cell in-process
     * (phase 1 through the shared cache, phase 2 with the normal
     * retry/journal path). Returns true when the row is done.
     */
    bool runCellInline(size_t unit, size_t spec);

    /** The journal (service layer appends epoch/lease records). */
    CampaignJournal &journal() { return journal_; }

    /** Highest epoch record replayed from the journal (0 fresh). */
    uint64_t resumedEpoch() const { return journal_meta_.last_epoch; }

    size_t size() const { return units_.size(); }
    const UnitResult &result(size_t unit) const
    {
        return results_.at(unit);
    }

    /** Structured records, populated by run(). */
    const ResultSink &sink() const { return sink_; }

    /** Export the sink as JSON; no-op returning true if @p path empty. */
    bool writeJson(const std::string &path) const;

    const RunnerOptions &options() const { return opts_; }

    /** True when every declared row finished (exit-code contract). */
    bool ok() const;

    /**
     * Human-readable account of what failed; "" when ok(). Bench
     * binaries print this to stderr before exiting non-zero.
     */
    std::string failureSummary() const;

    /**
     * FNV-1a over the full declaration set; the journal refuses to
     * resume under a different signature.
     */
    uint64_t signature() const;

    /** Store-layer counters for the executed run. */
    StoreStats storeStats() const { return store_.stats(); }

    /** What the --store-gc pass pruned ({} when not requested). */
    StoreGcStats storeGcStats() const { return store_gc_stats_; }

  private:
    struct Unit {
        sim::AppId app;
        memsys::MemoryConfig mem;
        bool small;
        std::vector<sim::ModelSpec> specs;
    };

    void fillSink();
    void replayJournal();
    /**
     * Execute one phase-2 group of unit @p u with retry/watchdog/
     * journal. A transient fault retries the whole group (lanes of a
     * fused sweep aren't separable mid-pass); on success every row
     * journals individually, so --resume granularity is one cell no
     * matter how rows were grouped.
     */
    void runGroup(const sim::ViewBundle *bundle, size_t u,
                  const sim::ExecGroup &group,
                  const std::shared_ptr<const sim::LivePointSet> &lp);

    /**
     * The live points for (unit's trace key, the campaign's sampling
     * plan): loaded from the store's .dslp cache when a valid file
     * exists, otherwise computed with one functional-warming pass
     * over @p view and persisted for the next sweep. Called from the
     * trace's phase-1 job, so the warm pass runs once per trace and
     * is shared by every phase-2 group. Throws util::IoError on a
     * transient store fault (the phase-1 retry loop handles it).
     */
    std::shared_ptr<const sim::LivePointSet>
    resolveLivePoints(const Unit &unit, const trace::TraceView &view);
    void recordError(size_t unit, UnitError err);
    void recordCampaignError(UnitError err);

    /**
     * Deterministic backoff before retry @p attempt of work item
     * @p salt: capped exponential plus a jitter hashed from the item
     * and attempt (never wall clock / randomness, so a failing
     * campaign replays identically). Sleeps; affects only wall_ms.
     */
    void backoff(const std::string &salt, unsigned attempt) const;

    std::string bench_name_;
    RunnerOptions opts_;
    TraceStore store_;
    sim::TraceCache cache_;
    std::vector<Unit> units_;
    std::vector<UnitResult> results_;
    ResultSink sink_;
    CampaignJournal journal_;
    JournalMeta journal_meta_; ///< Epoch/lease records from replay.
    StoreGcStats store_gc_stats_;
    std::vector<UnitError> campaign_errors_; ///< Not tied to a unit.
    mutable std::mutex err_mu_; ///< Guards errors/failed across jobs.
};

} // namespace dsmem::runner

#endif // DSMEM_RUNNER_CAMPAIGN_H
