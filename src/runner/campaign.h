#ifndef DSMEM_RUNNER_CAMPAIGN_H
#define DSMEM_RUNNER_CAMPAIGN_H

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runner/journal.h"
#include "runner/result_sink.h"
#include "runner/runner.h"
#include "runner/trace_store.h"
#include "sim/executor.h"
#include "sim/experiment.h"
#include "sim/trace_bundle.h"

namespace dsmem::runner {

/**
 * One recorded failure inside a campaign unit. Non-fatal entries are
 * absorbed faults (a store rename that failed, a retry that later
 * succeeded); fatal entries mean the unit is missing results.
 */
struct UnitError {
    std::string site;    ///< Failing boundary ("phase1", "phase2", ...).
    std::string message; ///< Exception / error text.
    std::string spec;    ///< Spec label for row failures ("" = unit-wide).
    int attempts = 1;    ///< Attempts consumed, including the last.
    bool fatal = true;
};

/**
 * Results of one campaign unit, in the unit's declared spec order
 * (never in worker completion order — output stays bit-identical to
 * serial execution for any --jobs value).
 */
struct UnitResult {
    const sim::ViewBundle *bundle = nullptr;
    sim::TraceOrigin origin = sim::TraceOrigin::GENERATED;
    double trace_wall_ms = 0.0;        ///< Phase-1 getView() cost.
    sim::TraceTiming trace_timing;     ///< Generate vs load split.
    std::vector<sim::LabelledResult> rows;
    std::vector<double> row_wall_ms;   ///< Per-row timing cost.

    /**
     * Per-row sampling summary (index-matching rows). All entries
     * stay default (sampled == false) when the campaign ran without
     * a sampling plan or the row fell back to an exact run.
     */
    std::vector<sim::SampleSummary> row_sampling;

    /**
     * 1 when rows[s] holds a finished result (run now or restored
     * from the journal); 0 when the row failed or never ran.
     */
    std::vector<uint8_t> row_done;

    /**
     * Trace provenance restored from a journal: the unit skipped
     * phase 1, bundle stays null, and trace_instructions carries what
     * bundle->stats.instructions would have.
     */
    bool trace_from_journal = false;
    uint64_t trace_instructions = 0;

    std::vector<UnitError> errors;
    bool failed = false; ///< Any fatal error (missing rows).
};

/**
 * An experiment campaign: the declarative job graph the bench
 * binaries hand to the worker pool.
 *
 * A *unit* is one (app, MemoryConfig, size) trace timed under a list
 * of ModelSpecs. The campaign deduplicates phase-1 trace generation
 * across units keyed by the full MemoryConfig, executes everything on
 * a fixed-size pool (phase-2 runs for a trace are enqueued the moment
 * that trace lands — traces still generating don't block finished
 * ones), and exposes results in declaration order. Phase 2 re-times
 * an immutable trace, so parallel runs share nothing and results are
 * bit-identical to serial execution.
 *
 * Failure model (DESIGN.md "Failure model"): a job failure never
 * crashes the campaign. Transient faults (util::IoError) retry with
 * deterministic capped backoff; permanent failures mark their unit
 * failed while every other unit completes. With a journal configured
 * (RunnerOptions::journal_path) each completed row is made durable
 * before the campaign moves on, and resume (RunnerOptions::resume)
 * re-executes only the missing work — producing results identical to
 * an uninterrupted run.
 */
class Campaign
{
  public:
    Campaign(std::string bench_name, RunnerOptions opts);

    /** Declare a unit; returns its index. Call before run(). */
    size_t add(sim::AppId app, std::vector<sim::ModelSpec> specs,
               const memsys::MemoryConfig &mem = {},
               bool small = false);

    /** Execute every declared unit; idempotent per declaration set. */
    void run();

    size_t size() const { return units_.size(); }
    const UnitResult &result(size_t unit) const
    {
        return results_.at(unit);
    }

    /** Structured records, populated by run(). */
    const ResultSink &sink() const { return sink_; }

    /** Export the sink as JSON; no-op returning true if @p path empty. */
    bool writeJson(const std::string &path) const;

    const RunnerOptions &options() const { return opts_; }

    /** True when every declared row finished (exit-code contract). */
    bool ok() const;

    /**
     * Human-readable account of what failed; "" when ok(). Bench
     * binaries print this to stderr before exiting non-zero.
     */
    std::string failureSummary() const;

    /**
     * FNV-1a over the full declaration set; the journal refuses to
     * resume under a different signature.
     */
    uint64_t signature() const;

    /** Store-layer counters for the executed run. */
    StoreStats storeStats() const { return store_.stats(); }

  private:
    struct Unit {
        sim::AppId app;
        memsys::MemoryConfig mem;
        bool small;
        std::vector<sim::ModelSpec> specs;
    };

    void fillSink();
    void replayJournal();
    /**
     * Execute one phase-2 group of unit @p u with retry/watchdog/
     * journal. A transient fault retries the whole group (lanes of a
     * fused sweep aren't separable mid-pass); on success every row
     * journals individually, so --resume granularity is one cell no
     * matter how rows were grouped.
     */
    void runGroup(const std::shared_ptr<const trace::TraceView> &view,
                  size_t u, const sim::ExecGroup &group,
                  const std::shared_ptr<const sim::LivePointSet> &lp);

    /**
     * The live points for (unit's trace key, the campaign's sampling
     * plan): loaded from the store's .dslp cache when a valid file
     * exists, otherwise computed with one functional-warming pass
     * over @p view and persisted for the next sweep. Called from the
     * trace's phase-1 job, so the warm pass runs once per trace and
     * is shared by every phase-2 group. Throws util::IoError on a
     * transient store fault (the phase-1 retry loop handles it).
     */
    std::shared_ptr<const sim::LivePointSet>
    resolveLivePoints(const Unit &unit, const trace::TraceView &view);
    void recordError(size_t unit, UnitError err);
    void recordCampaignError(UnitError err);

    /**
     * Deterministic backoff before retry @p attempt of work item
     * @p salt: capped exponential plus a jitter hashed from the item
     * and attempt (never wall clock / randomness, so a failing
     * campaign replays identically). Sleeps; affects only wall_ms.
     */
    void backoff(const std::string &salt, unsigned attempt) const;

    std::string bench_name_;
    RunnerOptions opts_;
    TraceStore store_;
    sim::TraceCache cache_;
    std::vector<Unit> units_;
    std::vector<UnitResult> results_;
    ResultSink sink_;
    CampaignJournal journal_;
    std::vector<UnitError> campaign_errors_; ///< Not tied to a unit.
    mutable std::mutex err_mu_; ///< Guards errors/failed across jobs.
};

} // namespace dsmem::runner

#endif // DSMEM_RUNNER_CAMPAIGN_H
