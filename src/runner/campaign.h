#ifndef DSMEM_RUNNER_CAMPAIGN_H
#define DSMEM_RUNNER_CAMPAIGN_H

#include <string>
#include <vector>

#include "runner/result_sink.h"
#include "runner/runner.h"
#include "runner/trace_store.h"
#include "sim/experiment.h"
#include "sim/trace_bundle.h"

namespace dsmem::runner {

/**
 * Results of one campaign unit, in the unit's declared spec order
 * (never in worker completion order — output stays bit-identical to
 * serial execution for any --jobs value).
 */
struct UnitResult {
    const sim::ViewBundle *bundle = nullptr;
    sim::TraceOrigin origin = sim::TraceOrigin::GENERATED;
    double trace_wall_ms = 0.0;        ///< Phase-1 getView() cost.
    sim::TraceTiming trace_timing;     ///< Generate vs load split.
    std::vector<sim::LabelledResult> rows;
    std::vector<double> row_wall_ms;   ///< Per-row timing cost.
};

/**
 * An experiment campaign: the declarative job graph the bench
 * binaries hand to the worker pool.
 *
 * A *unit* is one (app, MemoryConfig, size) trace timed under a list
 * of ModelSpecs. The campaign deduplicates phase-1 trace generation
 * across units keyed by the full MemoryConfig, executes everything on
 * a fixed-size pool (phase-2 runs for a trace are enqueued the moment
 * that trace lands — traces still generating don't block finished
 * ones), and exposes results in declaration order. Phase 2 re-times
 * an immutable trace, so parallel runs share nothing and results are
 * bit-identical to serial execution.
 */
class Campaign
{
  public:
    Campaign(std::string bench_name, RunnerOptions opts);

    /** Declare a unit; returns its index. Call before run(). */
    size_t add(sim::AppId app, std::vector<sim::ModelSpec> specs,
               const memsys::MemoryConfig &mem = {},
               bool small = false);

    /** Execute every declared unit; idempotent per declaration set. */
    void run();

    size_t size() const { return units_.size(); }
    const UnitResult &result(size_t unit) const
    {
        return results_.at(unit);
    }

    /** Structured records, populated by run(). */
    const ResultSink &sink() const { return sink_; }

    /** Export the sink as JSON; no-op returning true if @p path empty. */
    bool writeJson(const std::string &path) const;

    const RunnerOptions &options() const { return opts_; }

  private:
    struct Unit {
        sim::AppId app;
        memsys::MemoryConfig mem;
        bool small;
        std::vector<sim::ModelSpec> specs;
    };

    void fillSink();

    std::string bench_name_;
    RunnerOptions opts_;
    TraceStore store_;
    sim::TraceCache cache_;
    std::vector<Unit> units_;
    std::vector<UnitResult> results_;
    ResultSink sink_;
};

} // namespace dsmem::runner

#endif // DSMEM_RUNNER_CAMPAIGN_H
