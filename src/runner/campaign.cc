#include "runner/campaign.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <tuple>

#include "util/byte_io.h"
#include "util/errors.h"
#include "util/failpoint.h"

namespace dsmem::runner {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
parseOrigin(const std::string &name, sim::TraceOrigin &out)
{
    if (name == "generated")
        out = sim::TraceOrigin::GENERATED;
    else if (name == "disk")
        out = sim::TraceOrigin::DISK;
    else if (name == "memory")
        out = sim::TraceOrigin::MEMORY;
    else
        return false;
    return true;
}

} // namespace

Campaign::Campaign(std::string bench_name, RunnerOptions opts)
    : bench_name_(std::move(bench_name)),
      opts_(std::move(opts)),
      store_(opts_.trace_dir),
      cache_(store_.enabled() ? &store_ : nullptr)
{
    store_.setStreamExec(opts_.stream_exec);
    // In-memory (storeless) bundles make the same residency decision
    // the store makes for disk loads, so DSMEM_STREAM_EXEC=on bites
    // in tests and benches that clear trace_dir.
    cache_.setStreamExec(opts_.stream_exec);
    // Absorbed store failures (failed renames/removes, quarantines)
    // surface as non-fatal campaign errors instead of vanishing.
    store_.setErrorHandler(
        [this](const std::string &site, const std::string &message) {
            recordCampaignError(UnitError{site, message, "", 1, false});
        });
}

size_t
Campaign::add(sim::AppId app, std::vector<sim::ModelSpec> specs,
              const memsys::MemoryConfig &mem, bool small)
{
    units_.push_back(Unit{app, mem, small, std::move(specs)});
    return units_.size() - 1;
}

// Keying tripwire (twin of the one in trace_store.cc): signature()
// hashes MemoryConfig memberwise. A new field must be folded in below
// (dram-style: only when active, so old signatures stay stable) —
// then update the expected sizes here and in trace_store.cc.
static_assert(sizeof(memsys::DramConfig) == 36,
              "DramConfig changed: update Campaign::signature + "
              "versionedFileName, then this size");
static_assert(sizeof(memsys::MemoryConfig) == 56,
              "MemoryConfig changed: update Campaign::signature + "
              "versionedFileName, then this size");

uint64_t
Campaign::signature() const
{
    uint64_t h = util::fnv1aUpdate(util::kFnvOffset,
                                   bench_name_.data(),
                                   bench_name_.size());
    // Sampling parameters fold in only when the plan is enabled
    // (dram-style): a sampled campaign's rows are estimates, so its
    // journal must never resume an exact campaign or vice versa —
    // while every sampling-off journal keeps its exact seed signature.
    if (opts_.sampling.enabled()) {
        uint64_t plan_fields[] = {
            opts_.sampling.period,
            opts_.sampling.detailed,
            opts_.sampling.warmup,
            opts_.sampling.seed,
        };
        h = util::fnv1aUpdate(h, plan_fields, sizeof plan_fields);
    }
    for (const Unit &u : units_) {
        std::string_view name = sim::appName(u.app);
        h = util::fnv1aUpdate(h, name.data(), name.size());
        uint64_t fields[] = {
            static_cast<uint64_t>(u.mem.hit_latency),
            static_cast<uint64_t>(u.mem.miss_latency),
            static_cast<uint64_t>(u.mem.protocol ==
                                  memsys::Protocol::MESI),
            static_cast<uint64_t>(u.mem.banks),
            static_cast<uint64_t>(u.mem.bank_occupancy),
            static_cast<uint64_t>(u.small),
            static_cast<uint64_t>(u.specs.size()),
        };
        h = util::fnv1aUpdate(h, fields, sizeof fields);
        // DRAM fields fold in only when the model is on: every
        // pre-existing journal keeps its exact seed signature.
        if (u.mem.dram.enabled()) {
            const memsys::DramConfig &d = u.mem.dram;
            uint64_t dram_fields[] = {
                static_cast<uint64_t>(d.banks),
                static_cast<uint64_t>(d.sched),
                static_cast<uint64_t>(d.row_bytes),
                static_cast<uint64_t>(d.t_rcd),
                static_cast<uint64_t>(d.t_rp),
                static_cast<uint64_t>(d.t_cas),
                static_cast<uint64_t>(d.bus_cycles),
                static_cast<uint64_t>(d.base_latency),
                static_cast<uint64_t>(d.batch_cap),
            };
            h = util::fnv1aUpdate(h, dram_fields, sizeof dram_fields);
        }
        for (const sim::ModelSpec &spec : u.specs) {
            std::string label = spec.label();
            h = util::fnv1aUpdate(h, label.data(), label.size());
        }
    }
    return h;
}

void
Campaign::recordError(size_t unit, UnitError err)
{
    std::lock_guard<std::mutex> lock(err_mu_);
    if (err.fatal)
        results_[unit].failed = true;
    results_[unit].errors.push_back(std::move(err));
}

void
Campaign::recordCampaignError(UnitError err)
{
    std::lock_guard<std::mutex> lock(err_mu_);
    campaign_errors_.push_back(std::move(err));
}

void
Campaign::backoff(const std::string &salt, unsigned attempt) const
{
    uint64_t ms = opts_.backoff_base_ms;
    for (unsigned i = 1; i < attempt && ms < opts_.backoff_cap_ms; ++i)
        ms *= 2;
    ms = std::min<uint64_t>(ms, opts_.backoff_cap_ms);
    uint64_t h =
        util::fnv1aUpdate(util::kFnvOffset, salt.data(), salt.size());
    h = util::fnv1aUpdate(h, &attempt, sizeof attempt);
    ms += h % (opts_.backoff_base_ms > 0 ? opts_.backoff_base_ms : 1);
    if (ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void
Campaign::replayJournal()
{
    std::vector<JournalRow> rows;
    std::vector<JournalTrace> traces;
    std::string err;
    journal_meta_ = JournalMeta{};
    if (!CampaignJournal::replay(opts_.journal_path, signature(),
                                 rows, traces, &err,
                                 &journal_meta_)) {
        recordCampaignError(
            UnitError{"journal", "cannot resume: " + err, "", 1, true});
        return;
    }

    // Later records win (a re-run group may have re-journaled its
    // trace line), and anything not matching the declaration set is
    // dropped with a report — the row simply re-runs.
    for (const JournalTrace &t : traces) {
        sim::TraceOrigin origin;
        if (t.unit >= units_.size() || !parseOrigin(t.origin, origin)) {
            recordCampaignError(UnitError{
                "journal",
                "ignoring trace record for unknown unit/origin", "",
                1, false});
            continue;
        }
        UnitResult &res = results_[t.unit];
        res.trace_from_journal = true;
        res.origin = origin;
        res.trace_instructions = t.instructions;
        res.trace_wall_ms = t.wall_ms;
        res.trace_timing.gen_ms = t.gen_ms;
        res.trace_timing.load_ms = t.load_ms;
    }
    for (const JournalRow &r : rows) {
        if (r.unit >= units_.size() ||
            r.spec >= units_[r.unit].specs.size() ||
            r.label != units_[r.unit].specs[r.spec].label()) {
            recordCampaignError(UnitError{
                "journal",
                "ignoring row record not matching the declared "
                "campaign",
                r.label, 1, false});
            continue;
        }
        UnitResult &res = results_[r.unit];
        res.rows[r.spec] = sim::LabelledResult{r.label, r.result};
        res.row_wall_ms[r.spec] = r.wall_ms;
        res.row_done[r.spec] = 1;
        res.row_sampling[r.spec] = r.sampling;
    }
}

bool
Campaign::prepare()
{
    results_.assign(units_.size(), UnitResult{});
    campaign_errors_.clear();
    for (size_t u = 0; u < units_.size(); ++u) {
        results_[u].rows.resize(units_[u].specs.size());
        results_[u].row_wall_ms.resize(units_[u].specs.size(), 0.0);
        results_[u].row_done.assign(units_[u].specs.size(), 0);
        results_[u].row_sampling.resize(units_[u].specs.size());
    }

    // A malformed sampling plan fails the whole campaign up front: no
    // unit could produce a valid estimate, and silently falling back
    // to exact runs would misreport what the user asked to measure.
    if (opts_.sampling.enabled()) {
        std::string why;
        if (!opts_.sampling.validate(&why)) {
            recordCampaignError(
                UnitError{"sampling", why, "", 1, true});
            fillSink();
            return false;
        }
    }

    const bool journalled = !opts_.journal_path.empty();
    if (opts_.resume && journalled &&
        std::ifstream(opts_.journal_path).good()) {
        replayJournal();
        // A journal that exists but cannot be trusted must not run
        // anything: finishing a *different* campaign under --resume
        // would overwrite results the user meant to keep.
        bool fatal = false;
        {
            std::lock_guard<std::mutex> lock(err_mu_);
            for (const UnitError &e : campaign_errors_)
                fatal = fatal || e.fatal;
        }
        if (fatal) {
            fillSink();
            return false;
        }
    }
    if (journalled) {
        std::string err;
        if (!journal_.open(opts_.journal_path, bench_name_,
                           signature(), opts_.resume, &err)) {
            recordCampaignError(
                UnitError{"journal", err, "", 1, false});
        }
    }

    if (opts_.store_gc && store_.enabled()) {
        StoreGcOptions gco;
        gco.max_age_s = opts_.store_gc_age_s;
        gco.max_corrupt_per_name = TraceStore::kMaxQuarantinePerName;
        // The keep set protects every file this campaign (or its
        // journal's resume) can reference, including the v1 names the
        // store would migrate from.
        for (const Unit &u : units_) {
            gco.keep.push_back(
                TraceStore::fileName(u.app, u.mem, u.small));
            gco.keep.push_back(
                TraceStore::legacyFileName(u.app, u.mem, u.small));
            if (opts_.sampling.enabled())
                gco.keep.push_back(TraceStore::livePointFileName(
                    u.app, u.mem, u.small, opts_.sampling));
        }
        store_gc_stats_ = store_.gc(gco);
    }
    return true;
}

void
Campaign::finish()
{
    if (journal_.failed())
        recordCampaignError(UnitError{
            "journal",
            "journalling disabled mid-run: " + journal_.failure() +
                " (campaign completed; this journal cannot resume "
                "it)",
            "", 1, false});
    journal_.close();

    fillSink();
}

void
Campaign::run()
{
    if (!prepare())
        return;

    // Group units sharing one phase-1 trace so it is generated once.
    using TraceKey = std::tuple<sim::AppId, memsys::MemoryConfig, bool>;
    std::map<TraceKey, std::vector<size_t>> groups;
    for (size_t u = 0; u < units_.size(); ++u)
        groups[{units_[u].app, units_[u].mem, units_[u].small}]
            .push_back(u);

    // Adaptive fusion: size sweep groups off the phase-2 work that is
    // actually pending (resume may have retired most of it) so fusing
    // never leaves workers idle. lane_cap == 1 disables fusion.
    size_t pending_ds = 0;
    for (size_t u = 0; u < units_.size(); ++u)
        for (size_t s = 0; s < units_[u].specs.size(); ++s)
            if (!results_[u].row_done[s] &&
                units_[u].specs[s].kind == sim::ModelSpec::Kind::DS)
                ++pending_ds;
    const size_t lane_cap = opts_.fuse_sweeps
        ? sim::adaptiveLaneCap(pending_ds, opts_.resolvedJobs())
        : 1;

    Runner runner(opts_.resolvedJobs());
    // Campaign jobs catch their own failures; anything that still
    // escapes (a non-exception crash path would abort regardless) is
    // recorded so ok() turns false instead of losing it.
    runner.setUncaughtHandler([this](const std::string &what) {
        recordCampaignError(
            UnitError{"runner", what, "", 1, true});
    });

    for (const auto &[key, unit_ids] : groups) {
        // Resume fast path: a group whose every row (and trace
        // record) is already durable re-runs nothing — not even
        // phase 1.
        bool pending = false;
        for (size_t u : unit_ids) {
            if (!results_[u].trace_from_journal)
                pending = true;
            for (uint8_t done : results_[u].row_done)
                pending = pending || !done;
        }
        if (!pending)
            continue;

        // Phase 1: resolve the trace (memory -> disk -> generate),
        // then immediately unblock this trace's phase-2 runs. Every
        // job writes only its own pre-sized slot, so no result
        // depends on worker scheduling.
        runner.submit([this, &runner, unit_ids, lane_cap] {
            const Unit &first = units_[unit_ids.front()];
            const std::string salt =
                "phase1:" + std::string(sim::appName(first.app)) +
                (first.small ? ":small" : ":full");
            sim::TraceOrigin origin;
            sim::TraceTiming timing;
            const sim::ViewBundle *bundle = nullptr;
            // Live points are per trace, not per cell: resolve them
            // here, inside the retry loop (the .dslp cache read can
            // fault transiently), and share one set with every
            // phase-2 group of this trace.
            std::shared_ptr<const sim::LivePointSet> lp;
            bool want_points = false;
            if (opts_.sampling.enabled())
                for (size_t u : unit_ids)
                    for (size_t s = 0; s < units_[u].specs.size(); ++s)
                        if (!results_[u].row_done[s] &&
                            units_[u].specs[s].kind ==
                                sim::ModelSpec::Kind::DS)
                            want_points = true;
            std::string transient;
            unsigned attempt = 1;
            auto start = std::chrono::steady_clock::now();
            for (;; ++attempt) {
                // Per-attempt clock: the watchdog budgets one job
                // execution, not the backoff sleeps between retries —
                // otherwise a fault that recovers on retry could
                // still be converted into a watchdog failure.
                start = std::chrono::steady_clock::now();
                try {
                    util::failpoint("campaign.phase1");
                    // Phase 2 only ever reads the SoA view, so
                    // resolve the view-shaped bundle: a v2 disk hit
                    // deserializes straight into TraceView arrays and
                    // the AoS trace never exists in this process.
                    bundle = &cache_.getView(first.app, first.mem,
                                             first.small, &origin,
                                             &timing);
                    if (want_points)
                        // Sampling's functional warming needs random
                        // access; a chunked bundle flattens (memoized)
                        // for this pass only.
                        lp = resolveLivePoints(first,
                                               *bundle->flatView());
                    break;
                } catch (const util::IoError &e) {
                    transient = e.what();
                    if (attempt < opts_.max_attempts) {
                        backoff(salt, attempt);
                        continue;
                    }
                    for (size_t u : unit_ids)
                        recordError(
                            u, UnitError{"phase1", transient, "",
                                         static_cast<int>(attempt),
                                         true});
                    return;
                } catch (const std::exception &e) {
                    for (size_t u : unit_ids)
                        recordError(
                            u, UnitError{"phase1", e.what(), "",
                                         static_cast<int>(attempt),
                                         true});
                    return;
                }
            }
            double wall = elapsedMs(start);
            if (opts_.job_timeout_ms > 0 &&
                wall > opts_.job_timeout_ms) {
                for (size_t u : unit_ids)
                    recordError(
                        u,
                        UnitError{
                            "watchdog",
                            "phase-1 job exceeded --job-timeout-ms",
                            "", static_cast<int>(attempt), true});
                return;
            }
            if (attempt > 1)
                recordError(unit_ids.front(),
                            UnitError{"phase1",
                                      "recovered after retry: " +
                                          transient,
                                      "",
                                      static_cast<int>(attempt),
                                      false});

            for (size_t u : unit_ids) {
                results_[u].bundle = bundle;
                results_[u].origin = origin;
                results_[u].trace_wall_ms = wall;
                results_[u].trace_timing = timing;
                results_[u].trace_from_journal = false;
                journal_.appendTrace(JournalTrace{
                    u, std::string(sim::traceOriginName(origin)),
                    bundle->stats.instructions, wall, timing.gen_ms,
                    timing.load_ms});
            }
            for (size_t u : unit_ids) {
                const Unit &unit = units_[u];
                // planPhase2 skips journal-restored rows and returns
                // groups longest-first; submission order feeds the
                // FIFO pool, so heavy sweeps start before stragglers.
                for (sim::ExecGroup &g : sim::planPhase2(
                         unit.specs, results_[u].row_done, lane_cap)) {
                    runner.submit(
                        [this, bundle, u, g = std::move(g), lp] {
                            runGroup(bundle, u, g, lp);
                        });
                }
            }
        });
    }
    runner.wait();

    finish();
}

std::vector<Campaign::CellRef>
Campaign::pendingCells() const
{
    std::vector<CellRef> cells;
    for (size_t u = 0; u < results_.size(); ++u)
        for (size_t s = 0; s < units_[u].specs.size(); ++s)
            if (!results_[u].row_done[s])
                cells.push_back(CellRef{u, s});
    return cells;
}

Campaign::ShardPlan
Campaign::shardPlan(unsigned workers) const
{
    ShardPlan plan;
    plan.shards.resize(std::max(1u, workers));

    // Group pending cells by trace key, first-appearance order, so a
    // shard resolves each phase-1 trace at most once.
    using TraceKey = std::tuple<sim::AppId, memsys::MemoryConfig, bool>;
    std::vector<std::pair<TraceKey, std::vector<CellRef>>> groups;
    for (CellRef c : pendingCells()) {
        TraceKey key{units_[c.unit].app, units_[c.unit].mem,
                     units_[c.unit].small};
        auto it = std::find_if(
            groups.begin(), groups.end(),
            [&](const auto &g) { return g.first == key; });
        if (it == groups.end()) {
            groups.push_back({key, {}});
            it = std::prev(groups.end());
        }
        it->second.push_back(c);
        ++plan.cells;
    }
    // Largest groups placed first on the lightest shard: the greedy
    // balance cannot strand one giant trace behind many small ones,
    // and ties break on shard index — fully deterministic.
    std::stable_sort(groups.begin(), groups.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.size() > b.second.size();
                     });
    for (const auto &g : groups) {
        size_t best = 0;
        for (size_t k = 1; k < plan.shards.size(); ++k)
            if (plan.shards[k].size() < plan.shards[best].size())
                best = k;
        plan.shards[best].insert(plan.shards[best].end(),
                                 g.second.begin(), g.second.end());
    }
    return plan;
}

Campaign::Accept
Campaign::acceptRemoteRow(size_t unit, size_t spec,
                          const core::RunResult &result,
                          const sim::SampleSummary &sampling,
                          double wall_ms)
{
    if (unit >= results_.size() || spec >= units_[unit].specs.size())
        return Accept::BAD_REF;
    UnitResult &res = results_[unit];
    if (res.row_done[spec]) {
        const sim::SampleSummary &have = res.row_sampling[spec];
        bool same = res.rows[spec].result == result &&
                    have.sampled == sampling.sampled &&
                    have.windows == sampling.windows &&
                    have.measured == sampling.measured &&
                    have.cpi_mean == sampling.cpi_mean &&
                    have.ci95 == sampling.ci95;
        return same ? Accept::DUPLICATE : Accept::MISMATCH;
    }
    std::string label = units_[unit].specs[spec].label();
    res.rows[spec] = sim::LabelledResult{label, result};
    res.row_wall_ms[spec] = wall_ms;
    res.row_done[spec] = 1;
    res.row_sampling[spec] = sampling;
    journal_.appendRow(
        JournalRow{unit, spec, label, result, wall_ms, sampling});
    return Accept::OK;
}

bool
Campaign::acceptRemoteTrace(size_t unit, const std::string &origin,
                            uint64_t instructions, double wall_ms,
                            double gen_ms, double load_ms)
{
    sim::TraceOrigin parsed;
    if (unit >= results_.size() || !parseOrigin(origin, parsed))
        return false;
    UnitResult &res = results_[unit];
    if (res.bundle != nullptr || res.trace_from_journal)
        return true; // First provenance report wins.
    res.trace_from_journal = true; // Bundle-less, like a resume.
    res.origin = parsed;
    res.trace_instructions = instructions;
    res.trace_wall_ms = wall_ms;
    res.trace_timing.gen_ms = gen_ms;
    res.trace_timing.load_ms = load_ms;
    journal_.appendTrace(JournalTrace{unit, origin, instructions,
                                      wall_ms, gen_ms, load_ms});
    return true;
}

void
Campaign::recordRemoteError(size_t unit, const std::string &spec_label,
                            const std::string &site,
                            const std::string &message, bool fatal)
{
    if (unit >= results_.size())
        return;
    recordError(unit,
                UnitError{site, message, spec_label, 1, fatal});
}

bool
Campaign::runCellInline(size_t unit, size_t spec)
{
    if (unit >= results_.size() || spec >= units_[unit].specs.size())
        return false;
    if (results_[unit].row_done[spec])
        return true;
    const Unit &u = units_[unit];
    const sim::ViewBundle *vb = nullptr;
    std::shared_ptr<const sim::LivePointSet> lp;
    try {
        sim::TraceOrigin origin;
        sim::TraceTiming timing;
        auto start = std::chrono::steady_clock::now();
        const sim::ViewBundle *bundle =
            &cache_.getView(u.app, u.mem, u.small, &origin, &timing);
        if (opts_.sampling.enabled() &&
            u.specs[spec].kind == sim::ModelSpec::Kind::DS)
            lp = resolveLivePoints(u, *bundle->flatView());
        double wall = elapsedMs(start);
        if (results_[unit].bundle == nullptr &&
            !results_[unit].trace_from_journal) {
            results_[unit].bundle = bundle;
            results_[unit].origin = origin;
            results_[unit].trace_wall_ms = wall;
            results_[unit].trace_timing = timing;
            journal_.appendTrace(JournalTrace{
                unit, std::string(sim::traceOriginName(origin)),
                bundle->stats.instructions, wall, timing.gen_ms,
                timing.load_ms});
        }
        vb = bundle;
    } catch (const std::exception &e) {
        recordError(unit,
                    UnitError{"phase1", e.what(),
                              u.specs[spec].label(), 1, true});
        return false;
    }
    sim::ExecGroup group;
    group.rows.push_back(spec);
    runGroup(vb, unit, group, lp);
    return results_[unit].row_done[spec] != 0;
}

std::shared_ptr<const sim::LivePointSet>
Campaign::resolveLivePoints(const Unit &unit,
                            const trace::TraceView &view)
{
    if (auto cached = store_.loadLivePoints(unit.app, unit.mem,
                                            unit.small, opts_.sampling)) {
        // The file's checksum and plan fields already verified; the
        // last gate is that it was warmed from *this* trace content
        // (a regenerated trace of a different length, or a changed
        // offset-hash input, silently invalidates the cache).
        if (cached->instructions == view.size() &&
            cached->offset ==
                opts_.sampling.offsetFor(view.name(), view.size()))
            return std::make_shared<const sim::LivePointSet>(
                std::move(*cached));
    }
    auto lp = std::make_shared<sim::LivePointSet>(
        sim::computeLivePoints(view, opts_.sampling));
    store_.storeLivePoints(unit.app, unit.mem, unit.small,
                           opts_.sampling, *lp);
    return lp;
}

void
Campaign::runGroup(const sim::ViewBundle *bundle, size_t u,
                   const sim::ExecGroup &group,
                   const std::shared_ptr<const sim::LivePointSet> &lp)
{
    // One simulation context per worker thread, recycled across every
    // group the worker ever runs (results are context-independent —
    // see core::SimContext).
    thread_local core::SimContext sim_ctx;

    const Unit &unit = units_[u];
    std::string label;
    for (size_t s : group.rows) {
        if (!label.empty())
            label += "+";
        label += unit.specs[s].label();
    }
    const std::string salt =
        "phase2:" + std::string(sim::appName(unit.app)) + ":" + label;
    std::vector<core::RunResult> results;
    std::vector<sim::SampleSummary> summaries(group.rows.size());
    const bool sampled = opts_.sampling.enabled() && lp != nullptr;
    std::string transient;
    unsigned attempt = 1;
    auto t0 = std::chrono::steady_clock::now();
    for (;; ++attempt) {
        // Per-attempt clock — see the phase-1 watchdog note.
        t0 = std::chrono::steady_clock::now();
        try {
            // One failpoint evaluation per cell, fused or not, so a
            // fault-injection schedule is independent of how the
            // planner happened to group rows.
            for (size_t i = 0; i < group.rows.size(); ++i)
                util::failpoint("campaign.phase2");
            if (sampled) {
                // Sampled execution jumps between checkpointed
                // windows — inherently random-access, so a chunked
                // bundle flattens (memoized, shared across groups).
                std::vector<sim::SampledCell> cells =
                    sim::runGroupSampled(*bundle->flatView(),
                                         unit.specs, group,
                                         opts_.sampling, *lp, sim_ctx);
                results.clear();
                for (size_t i = 0; i < cells.size(); ++i) {
                    results.push_back(cells[i].result);
                    summaries[i] = cells[i].sampling;
                }
            } else {
                results =
                    sim::runGroup(*bundle, unit.specs, group, sim_ctx);
            }
            break;
        } catch (const util::IoError &e) {
            // A fused sweep is one pass — lanes aren't separable mid-
            // flight, so the whole group retries together.
            transient = e.what();
            if (attempt < opts_.max_attempts) {
                backoff(salt, attempt);
                continue;
            }
            for (size_t s : group.rows)
                recordError(u, UnitError{"phase2", transient,
                                         unit.specs[s].label(),
                                         static_cast<int>(attempt),
                                         true});
            return;
        } catch (const std::exception &e) {
            for (size_t s : group.rows)
                recordError(u, UnitError{"phase2", e.what(),
                                         unit.specs[s].label(),
                                         static_cast<int>(attempt),
                                         true});
            return;
        }
    }
    double wall = elapsedMs(t0);
    if (opts_.job_timeout_ms > 0 && wall > opts_.job_timeout_ms) {
        // The watchdog cannot safely kill a thread mid-simulation;
        // instead an over-budget job is failed at completion and its
        // result discarded. A job that never returns at all still
        // blocks wait() — see DESIGN.md "Failure model".
        for (size_t s : group.rows)
            recordError(u, UnitError{"watchdog",
                                     "phase-2 job exceeded "
                                     "--job-timeout-ms",
                                     unit.specs[s].label(),
                                     static_cast<int>(attempt), true});
        return;
    }
    if (attempt > 1)
        recordError(u, UnitError{"phase2",
                                 "recovered after retry: " + transient,
                                 label, static_cast<int>(attempt),
                                 false});

    // Decompose back to per-cell rows: each journals independently
    // (resume granularity is unchanged by fusion) and the group's
    // wall clock is split evenly — the lanes ran interleaved, so no
    // finer attribution exists.
    double row_wall = wall / static_cast<double>(group.rows.size());
    for (size_t i = 0; i < group.rows.size(); ++i) {
        size_t s = group.rows[i];
        std::string row_label = unit.specs[s].label();
        results_[u].rows[s] =
            sim::LabelledResult{row_label, results[i]};
        results_[u].row_wall_ms[s] = row_wall;
        results_[u].row_done[s] = 1;
        results_[u].row_sampling[s] = summaries[i];
        journal_.appendRow(JournalRow{u, s, row_label, results[i],
                                      row_wall, summaries[i]});
    }
}

bool
Campaign::ok() const
{
    std::lock_guard<std::mutex> lock(err_mu_);
    for (const UnitResult &res : results_)
        if (res.failed)
            return false;
    for (const UnitError &e : campaign_errors_)
        if (e.fatal)
            return false;
    return true;
}

std::string
Campaign::failureSummary() const
{
    std::lock_guard<std::mutex> lock(err_mu_);
    std::ostringstream os;
    for (size_t u = 0; u < results_.size(); ++u) {
        const UnitResult &res = results_[u];
        if (!res.failed)
            continue;
        os << bench_name_ << ": unit " << u << " ("
           << sim::appName(units_[u].app) << ") failed:\n";
        for (const UnitError &e : res.errors) {
            if (!e.fatal)
                continue;
            os << "  [" << e.site << "] "
               << (e.spec.empty() ? std::string("(unit)") : e.spec)
               << ": " << e.message << " (attempt " << e.attempts
               << " of " << opts_.max_attempts << ")\n";
        }
    }
    for (const UnitError &e : campaign_errors_)
        if (e.fatal)
            os << bench_name_ << ": [" << e.site << "] " << e.message
               << "\n";
    return os.str();
}

void
Campaign::fillSink()
{
    sink_.clear();
    // Stable mode exports the deterministic projection only: every
    // field that varies with wall clock, machine, process topology,
    // cache temperature, or absorbed-fault history is blanked, so two
    // runs of the same declaration set diff byte-identically no
    // matter how (or how many times) they executed.
    const bool stable = opts_.stable_json;
    sink_.setContext(bench_name_, stable ? 0 : opts_.resolvedJobs(),
                     stable ? "" : opts_.trace_dir);

    // Records are appended in declaration order (units, then specs),
    // independent of the order workers finished in. Trace records
    // dedup by trace key — not bundle pointer — because a resumed or
    // failed unit has no bundle in memory.
    using TraceKey = std::tuple<sim::AppId, memsys::MemoryConfig, bool>;
    std::vector<TraceKey> seen;
    for (size_t u = 0; u < units_.size(); ++u) {
        const Unit &unit = units_[u];
        const UnitResult &res = results_[u];

        TraceKey key{unit.app, unit.mem, unit.small};
        bool first_use =
            std::find(seen.begin(), seen.end(), key) == seen.end();
        bool have_trace =
            res.bundle != nullptr || res.trace_from_journal;
        if (first_use && have_trace) {
            seen.push_back(key);
            TraceRecord t;
            t.app = std::string(sim::appName(unit.app));
            t.hit_latency = unit.mem.hit_latency;
            t.miss_latency = unit.mem.miss_latency;
            t.protocol = unit.mem.protocol == memsys::Protocol::MESI
                ? "MESI"
                : "MSI";
            t.banks = unit.mem.banks;
            t.small = unit.small;
            t.origin = stable
                ? ""
                : std::string(sim::traceOriginName(res.origin));
            t.file = stable
                ? ""
                : store_.pathFor(unit.app, unit.mem, unit.small);
            t.instructions = res.bundle
                ? res.bundle->stats.instructions
                : res.trace_instructions;
            t.wall_ms = stable ? 0.0 : res.trace_wall_ms;
            t.gen_ms = stable ? 0.0 : res.trace_timing.gen_ms;
            t.load_ms = stable ? 0.0 : res.trace_timing.load_ms;
            // Contention members only when the unit's config enabled
            // them; stats need the bundle resident (a journal-resumed
            // unit skipped phase 1, so counters stay their zero
            // defaults while geometry still documents the config).
            // Stable mode blanks them for the same reason: whether
            // the bundle is resident depends on which process ran
            // phase 1, and a deterministic projection cannot.
            if (unit.mem.banks > 0) {
                t.has_contention = true;
                if (res.bundle && !stable)
                    t.contention_cycles =
                        res.bundle->cache0.contention_cycles;
            }
            if (unit.mem.dram.enabled()) {
                t.has_dram = true;
                t.dram_banks = unit.mem.dram.banks;
                t.dram_row_bytes = unit.mem.dram.row_bytes;
                t.dram_sched =
                    memsys::schedPolicyName(unit.mem.dram.sched);
                if (res.bundle && !stable)
                    t.dram_stats = res.bundle->cache0.dram;
            }
            sink_.addTrace(std::move(t));
        }

        // Hidden-read fractions are relative to the unit's BASE row,
        // when the unit declared one (and it finished).
        const core::RunResult *base = nullptr;
        for (size_t s = 0; s < unit.specs.size(); ++s) {
            if (unit.specs[s].kind == sim::ModelSpec::Kind::BASE &&
                res.row_done[s]) {
                base = &res.rows[s].result;
                break;
            }
        }

        for (size_t s = 0; s < unit.specs.size(); ++s) {
            if (!res.row_done[s])
                continue; // Failed rows are reported in errors.
            RunRecord r;
            r.app = std::string(sim::appName(unit.app));
            r.spec = res.rows[s].label;
            r.trace_origin = stable
                ? ""
                : std::string(sim::traceOriginName(res.origin));
            r.result = res.rows[s].result;
            r.hidden_read = base
                ? sim::hiddenReadFraction(*base, res.rows[s].result)
                : 0.0;
            r.wall_ms = stable ? 0.0 : res.row_wall_ms[s];
            const sim::SampleSummary &ss = res.row_sampling[s];
            if (ss.sampled) {
                r.has_sampling = true;
                r.sample_windows = ss.windows;
                r.sample_measured = ss.measured;
                r.cpi_mean = ss.cpi_mean;
                r.ci95 = ss.ci95;
            }
            sink_.addRun(std::move(r));
        }

        // Error records are fault *history* — how many retries, which
        // worker died — not results; stable mode omits them so a
        // chaos run that absorbed every fault diffs clean. Fatal
        // errors still fail ok(), so nothing is hidden from the exit
        // code.
        if (!stable) {
            for (const UnitError &e : res.errors) {
                ErrorRecord rec;
                rec.app = std::string(sim::appName(unit.app));
                rec.spec = e.spec;
                rec.site = e.site;
                rec.message = e.message;
                rec.attempts = e.attempts;
                rec.fatal = e.fatal;
                sink_.addError(std::move(rec));
            }
        }
    }
    if (!stable) {
        std::lock_guard<std::mutex> lock(err_mu_);
        for (const UnitError &e : campaign_errors_) {
            ErrorRecord rec;
            rec.spec = e.spec;
            rec.site = e.site;
            rec.message = e.message;
            rec.attempts = e.attempts;
            rec.fatal = e.fatal;
            sink_.addError(std::move(rec));
        }
    }
}

bool
Campaign::writeJson(const std::string &path) const
{
    if (path.empty())
        return true;
    return sink_.writeJsonFile(path);
}

} // namespace dsmem::runner
