#include "runner/campaign.h"

#include <chrono>
#include <map>
#include <tuple>

namespace dsmem::runner {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

Campaign::Campaign(std::string bench_name, RunnerOptions opts)
    : bench_name_(std::move(bench_name)),
      opts_(std::move(opts)),
      store_(opts_.trace_dir),
      cache_(store_.enabled() ? &store_ : nullptr)
{
}

size_t
Campaign::add(sim::AppId app, std::vector<sim::ModelSpec> specs,
              const memsys::MemoryConfig &mem, bool small)
{
    units_.push_back(Unit{app, mem, small, std::move(specs)});
    return units_.size() - 1;
}

void
Campaign::run()
{
    results_.assign(units_.size(), UnitResult{});
    for (size_t u = 0; u < units_.size(); ++u) {
        results_[u].rows.resize(units_[u].specs.size());
        results_[u].row_wall_ms.resize(units_[u].specs.size(), 0.0);
    }

    // Group units sharing one phase-1 trace so it is generated once.
    using TraceKey = std::tuple<sim::AppId, memsys::MemoryConfig, bool>;
    std::map<TraceKey, std::vector<size_t>> groups;
    for (size_t u = 0; u < units_.size(); ++u)
        groups[{units_[u].app, units_[u].mem, units_[u].small}]
            .push_back(u);

    Runner runner(opts_.resolvedJobs());
    for (const auto &[key, unit_ids] : groups) {
        // Phase 1: resolve the trace (memory -> disk -> generate),
        // then immediately unblock this trace's phase-2 runs. Every
        // job writes only its own pre-sized slot, so no result
        // depends on worker scheduling.
        runner.submit([this, &runner, unit_ids] {
            const Unit &first = units_[unit_ids.front()];
            auto start = std::chrono::steady_clock::now();
            sim::TraceOrigin origin;
            sim::TraceTiming timing;
            // Phase 2 only ever reads the SoA view, so resolve the
            // view-shaped bundle: a v2 disk hit deserializes straight
            // into TraceView arrays and the AoS trace never exists in
            // this process.
            const sim::ViewBundle &bundle = cache_.getView(
                first.app, first.mem, first.small, &origin, &timing);
            std::shared_ptr<const trace::TraceView> view = bundle.view;
            double wall = elapsedMs(start);

            for (size_t u : unit_ids) {
                results_[u].bundle = &bundle;
                results_[u].origin = origin;
                results_[u].trace_wall_ms = wall;
                results_[u].trace_timing = timing;
            }
            for (size_t u : unit_ids) {
                const Unit &unit = units_[u];
                for (size_t s = 0; s < unit.specs.size(); ++s) {
                    runner.submit([this, view, u, s] {
                        auto t0 = std::chrono::steady_clock::now();
                        core::RunResult r = sim::runModel(
                            *view, units_[u].specs[s]);
                        results_[u].rows[s] = {
                            units_[u].specs[s].label(), r};
                        results_[u].row_wall_ms[s] = elapsedMs(t0);
                    });
                }
            }
        });
    }
    runner.wait();

    fillSink();
}

void
Campaign::fillSink()
{
    sink_.clear();
    sink_.setContext(bench_name_, opts_.resolvedJobs(),
                     opts_.trace_dir);

    // Records are appended in declaration order (units, then specs),
    // independent of the order workers finished in.
    std::vector<const sim::ViewBundle *> seen;
    for (size_t u = 0; u < units_.size(); ++u) {
        const Unit &unit = units_[u];
        const UnitResult &res = results_[u];

        bool first_use = true;
        for (const sim::ViewBundle *b : seen)
            if (b == res.bundle)
                first_use = false;
        if (first_use) {
            seen.push_back(res.bundle);
            TraceRecord t;
            t.app = std::string(sim::appName(unit.app));
            t.hit_latency = unit.mem.hit_latency;
            t.miss_latency = unit.mem.miss_latency;
            t.protocol = unit.mem.protocol == memsys::Protocol::MESI
                ? "MESI"
                : "MSI";
            t.banks = unit.mem.banks;
            t.small = unit.small;
            t.origin = std::string(sim::traceOriginName(res.origin));
            t.file = store_.pathFor(unit.app, unit.mem, unit.small);
            t.instructions = res.bundle->stats.instructions;
            t.wall_ms = res.trace_wall_ms;
            t.gen_ms = res.trace_timing.gen_ms;
            t.load_ms = res.trace_timing.load_ms;
            sink_.addTrace(std::move(t));
        }

        // Hidden-read fractions are relative to the unit's BASE row,
        // when the unit declared one.
        const core::RunResult *base = nullptr;
        for (size_t s = 0; s < unit.specs.size(); ++s) {
            if (unit.specs[s].kind == sim::ModelSpec::Kind::BASE) {
                base = &res.rows[s].result;
                break;
            }
        }

        for (size_t s = 0; s < unit.specs.size(); ++s) {
            RunRecord r;
            r.app = std::string(sim::appName(unit.app));
            r.spec = res.rows[s].label;
            r.trace_origin =
                std::string(sim::traceOriginName(res.origin));
            r.result = res.rows[s].result;
            r.hidden_read = base
                ? sim::hiddenReadFraction(*base, res.rows[s].result)
                : 0.0;
            r.wall_ms = res.row_wall_ms[s];
            sink_.addRun(std::move(r));
        }
    }
}

bool
Campaign::writeJson(const std::string &path) const
{
    if (path.empty())
        return true;
    return sink_.writeJsonFile(path);
}

} // namespace dsmem::runner
