#include "apps/lu.h"

#include <cmath>

#include "apps/rng.h"
#include "mp/dsl.h"

namespace dsmem::apps {

using mp::Val;

namespace {

const uint32_t kSiteColLoop = mp::siteId("lu.column_loop");
const uint32_t kSiteNormLoop = mp::siteId("lu.normalize_loop");
const uint32_t kSiteOwnerTest = mp::siteId("lu.owner_test");
const uint32_t kSiteUpdateJ = mp::siteId("lu.update_column_loop");
const uint32_t kSiteUpdateI = mp::siteId("lu.update_row_loop");

} // namespace

Lu::Lu(const LuConfig &config) : config_(config)
{
    if (config.n < 2)
        throw std::invalid_argument("LU needs n >= 2");
}

void
Lu::setup(mp::Engine &engine)
{
    const uint32_t n = config_.n;
    const size_t slots = static_cast<size_t>(colStride()) * n;
    a_ = mp::ArenaArray<double>(&engine.arena(), slots);
    reference_.assign(slots, 0.0);

    // Diagonally dominant matrix: LU without pivoting stays stable.
    Rng rng(config_.seed);
    for (uint32_t col = 0; col < n; ++col) {
        for (uint32_t row = 0; row < n; ++row) {
            double v = rng.range(-1.0, 1.0);
            if (row == col)
                v += static_cast<double>(n);
            a_.set(flatIndex(row, col), v);
            reference_[flatIndex(row, col)] = v;
        }
    }

    col_ready_.clear();
    col_ready_.reserve(n);
    for (uint32_t col = 0; col < n; ++col)
        col_ready_.push_back(engine.createEvent());
    bar_ = engine.createBarrier();
}

mp::Task
Lu::worker(mp::ThreadContext &ctx, uint32_t tid)
{
    const uint32_t n = config_.n;
    const uint32_t procs = ctx.numProcs();

    co_await ctx.barrier(bar_);

    Val one = ctx.imm(1);
    Val vn = ctx.imm(n);
    Val vnn = ctx.imm(colStride());
    Val vprocs = ctx.imm(procs);
    Val vtid = ctx.imm(tid);

    Val vk = ctx.imm(0);
    while (ctx.branch(kSiteColLoop, ctx.lt(vk, vn))) {
        uint32_t k = static_cast<uint32_t>(vk.i);
        Val col_k_base = ctx.mul(vk, vnn);

        // Does this processor own the pivot column?
        Val owner = ctx.rem(vk, vprocs);
        if (ctx.branch(kSiteOwnerTest, ctx.eq(owner, vtid))) {
            // Normalize column k below the diagonal.
            Val diag_idx = ctx.add(col_k_base, vk);
            Val akk = co_await ctx.loadIdx(a_, diag_idx);
            Val vi = ctx.add(vk, one);
            while (ctx.branch(kSiteNormLoop, ctx.lt(vi, vn))) {
                Val idx = ctx.add(col_k_base, vi);
                Val aik = co_await ctx.loadIdx(a_, idx);
                Val norm = ctx.fdivv(aik, akk);
                co_await ctx.storeIdx(a_, idx, norm);
                vi = ctx.add(vi, one);
            }
            co_await ctx.setEvent(col_ready_[k]);
        } else {
            co_await ctx.waitEvent(col_ready_[k]);
        }

        // Update the columns this processor owns beyond k.
        // First owned column index strictly greater than k.
        uint32_t first_j = tid <= k ? (k / procs) * procs + tid : tid;
        while (first_j <= k)
            first_j += procs;
        Val vj = ctx.imm(first_j);
        while (ctx.branch(kSiteUpdateJ, ctx.lt(vj, vn))) {
            Val col_j_base = ctx.mul(vj, vnn);
            Val akj_idx = ctx.add(col_j_base, vk);
            Val akj = co_await ctx.loadIdx(a_, akj_idx);

            Val vi = ctx.add(vk, one);
            while (ctx.branch(kSiteUpdateI, ctx.lt(vi, vn))) {
                Val ik_idx = ctx.add(col_k_base, vi);
                Val aik = co_await ctx.loadIdx(a_, ik_idx);
                Val ij_idx = ctx.add(col_j_base, vi);
                Val aij = co_await ctx.loadIdx(a_, ij_idx);
                Val prod = ctx.fmul(aik, akj);
                Val next = ctx.fsub(aij, prod);
                co_await ctx.storeIdx(a_, ij_idx, next);
                vi = ctx.add(vi, one);
            }
            vj = ctx.add(vj, vprocs);
        }

        vk = ctx.add(vk, one);
    }

    co_await ctx.barrier(bar_);
}

bool
Lu::verify(const mp::Engine &) const
{
    // Recompute the factorization natively in the same operation
    // order and compare elementwise.
    const uint32_t n = config_.n;
    std::vector<double> m = reference_;
    for (uint32_t k = 0; k < n; ++k) {
        double akk = m[flatIndex(k, k)];
        for (uint32_t i = k + 1; i < n; ++i)
            m[flatIndex(i, k)] = akk == 0.0 ? 0.0
                                            : m[flatIndex(i, k)] / akk;
        for (uint32_t j = k + 1; j < n; ++j) {
            double akj = m[flatIndex(k, j)];
            for (uint32_t i = k + 1; i < n; ++i)
                m[flatIndex(i, j)] -= m[flatIndex(i, k)] * akj;
        }
    }
    for (size_t idx = 0; idx < m.size(); ++idx) {
        double got = a_.get(idx);
        double want = m[idx];
        if (std::fabs(got - want) >
            1e-9 * std::max(1.0, std::fabs(want))) {
            return false;
        }
    }
    return true;
}

} // namespace dsmem::apps
