#ifndef DSMEM_APPS_LOCUS_H
#define DSMEM_APPS_LOCUS_H

#include <cstdint>
#include <vector>

#include "apps/app.h"
#include "mp/arena.h"
#include "mp/sync.h"

namespace dsmem::apps {

/** LOCUS problem size (paper: 1266 wires, 481x18 cost array). */
struct LocusConfig {
    uint32_t wires = 640;
    uint32_t width = 480;  ///< Cost array columns (paper: 481).
    uint32_t height = 18;  ///< Cost array rows (routing channels).
    uint32_t max_span = 24; ///< Maximum horizontal wire span.
    uint32_t iterations = 2; ///< Routing passes (rip-up and re-route).
    uint64_t seed = 31337;
};

/**
 * LOCUS — the LocusRoute standard-cell global router (Section 3.3).
 *
 * The shared cost array counts the wires running through each routing
 * cell. Wires are claimed dynamically from a lock-protected task
 * counter; for each wire the router evaluates the candidate one-bend
 * (L-shaped) and two-bend (Z-shaped) routes between its endpoints by
 * summing the cost cells along each candidate, picks the cheapest,
 * and increments the cost cells of the winner. Cost evaluation is a
 * long strand of load-add-compare with a branch per cell, giving the
 * paper's high branch density; the array itself is the shared hot
 * data that produces communication misses.
 */
class Locus : public Application
{
  public:
    explicit Locus(const LocusConfig &config);

    std::string_view name() const override { return "LOCUS"; }
    void setup(mp::Engine &engine) override;
    mp::Task worker(mp::ThreadContext &ctx, uint32_t tid) override;
    bool verify(const mp::Engine &engine) const override;

    const LocusConfig &locusConfig() const { return config_; }

  private:
    struct Wire {
        uint32_t x1, y1, x2, y2;
    };

    size_t flatIndex(uint32_t x, uint32_t y) const
    {
        return static_cast<size_t>(y) * config_.width + x;
    }

    LocusConfig config_;
    std::vector<Wire> wires_;
    mp::ArenaArray<int64_t> cost_;      ///< Shared cost array.
    mp::ArenaArray<int64_t> next_wire_; ///< One task counter per pass.
    mp::ArenaArray<int64_t> routed_;    ///< Per-wire chosen bend row.
    mp::LockId queue_lock_ = 0;
    std::vector<mp::LockId> region_locks_;
    mp::BarrierId bar_ = 0;
};

} // namespace dsmem::apps

#endif // DSMEM_APPS_LOCUS_H
