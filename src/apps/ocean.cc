#include "apps/ocean.h"

#include <cmath>
#include <stdexcept>

#include "apps/rng.h"
#include "mp/dsl.h"

namespace dsmem::apps {

using mp::Val;

namespace {

const uint32_t kSiteStep = mp::siteId("ocean.timestep_loop");
const uint32_t kSitePass = mp::siteId("ocean.pass_loop");
const uint32_t kSiteRowA = mp::siteId("ocean.stencil_row");
const uint32_t kSiteColA = mp::siteId("ocean.stencil_col");
const uint32_t kSiteScale = mp::siteId("ocean.scale_loop");
const uint32_t kSiteRowC = mp::siteId("ocean.scale_row");
const uint32_t kSiteColC = mp::siteId("ocean.scale_col");
const uint32_t kSiteClear = mp::siteId("ocean.clear_loop");
const uint32_t kSiteRowD = mp::siteId("ocean.clear_row");
const uint32_t kSiteColD = mp::siteId("ocean.clear_col");
const uint32_t kSiteSweep = mp::siteId("ocean.sor_sweep");
const uint32_t kSiteRowB = mp::siteId("ocean.sor_row");
const uint32_t kSiteColB = mp::siteId("ocean.sor_col");

constexpr double kOmega = 1.2;
constexpr double kQuarter = 0.25;
constexpr double kDecay = 0.95;

} // namespace

Ocean::Ocean(const OceanConfig &config) : config_(config)
{
    if (config.n < 4)
        throw std::invalid_argument("OCEAN needs n >= 4");
    if (config.grids < 21)
        throw std::invalid_argument("OCEAN needs >= 21 grids");
}

void
Ocean::setup(mp::Engine &engine)
{
    const size_t cells = static_cast<size_t>(stride()) * stride();
    Rng rng(config_.seed);
    grids_.clear();
    grids_.reserve(config_.grids);
    for (uint32_t g = 0; g < config_.grids; ++g) {
        // A one-line stagger per grid avoids systematic direct-mapped
        // aliasing between the same rows of different grids.
        engine.arena().alloc(2 * (g + 1));
        grids_.emplace_back(&engine.arena(), cells, /*padded=*/true);
        for (size_t c = 0; c < cells; ++c)
            grids_[g].set(c, rng.range(-1.0, 1.0));
    }
    bar_ = engine.createBarrier();
}

mp::Task
Ocean::worker(mp::ThreadContext &ctx, uint32_t tid)
{
    const uint32_t n = config_.n;
    const uint32_t procs = ctx.numProcs();
    const uint32_t row_lo = 1 + tid * n / procs;
    const uint32_t row_hi = 1 + (tid + 1) * n / procs;
    const uint32_t G = config_.grids;

    co_await ctx.barrier(bar_);

    Val vone = ctx.imm(1);
    Val vtwo = ctx.imm(2);
    Val vn = ctx.imm(n);
    Val vstride = ctx.imm(stride());
    Val vrow_lo = ctx.imm(row_lo);
    Val vrow_hi = ctx.imm(row_hi);
    Val vquarter = ctx.fimm(kQuarter);
    Val vomega = ctx.fimm(kOmega);
    Val vdecay = ctx.fimm(kDecay);
    Val vzero = ctx.fimm(0.0);

    Val vstep = ctx.imm(0);
    Val vsteps = ctx.imm(config_.timesteps);
    while (ctx.branch(kSiteStep, ctx.lt(vstep, vsteps))) {
        uint32_t t = static_cast<uint32_t>(vstep.i);

        // ---- 5-point stencil phases over rotating grid pairs ------
        Val vpass = ctx.imm(0);
        Val vpasses = ctx.imm(config_.stencil_passes);
        while (ctx.branch(kSitePass, ctx.lt(vpass, vpasses))) {
            uint32_t pass = t * config_.stencil_passes +
                static_cast<uint32_t>(vpass.i);
            const auto &a = grids_[pass % G];
            const auto &w = grids_[(pass + 13) % G];

            Val vi = vrow_lo;
            while (ctx.branch(kSiteRowA, ctx.lt(vi, vrow_hi))) {
                Val row_base = ctx.mul(vi, vstride);
                Val vj = vone;
                while (ctx.branch(kSiteColA, ctx.le(vj, vn))) {
                    Val idx = ctx.add(row_base, vj);
                    Val up = co_await ctx.loadIdx(a, ctx.sub(idx, vstride));
                    Val dn = co_await ctx.loadIdx(a, ctx.add(idx, vstride));
                    Val lf = co_await ctx.loadIdx(a, ctx.sub(idx, vone));
                    Val rt = co_await ctx.loadIdx(a, ctx.add(idx, vone));
                    Val ctr = co_await ctx.loadIdx(a, idx);
                    Val sum = ctx.fadd(ctx.fadd(up, dn), ctx.fadd(lf, rt));
                    Val res = ctx.fsub(ctx.fmul(vquarter, sum), ctr);
                    co_await ctx.storeIdx(w, idx, res);
                    vj = ctx.add(vj, vone);
                }
                vi = ctx.add(vi, vone);
            }
            co_await ctx.barrier(bar_);
            vpass = ctx.add(vpass, vone);
        }

        // ---- Scale-copy phases (write a fresh grid) ---------------
        Val vscale = ctx.imm(0);
        Val vscales = ctx.imm(config_.scale_passes);
        while (ctx.branch(kSiteScale, ctx.lt(vscale, vscales))) {
            uint32_t pass = t * config_.scale_passes +
                static_cast<uint32_t>(vscale.i);
            const auto &dst = grids_[(pass + 3) % G];
            const auto &src = grids_[(pass + 17) % G];

            Val vi = vrow_lo;
            while (ctx.branch(kSiteRowC, ctx.lt(vi, vrow_hi))) {
                Val row_base = ctx.mul(vi, vstride);
                Val vj = vone;
                while (ctx.branch(kSiteColC, ctx.le(vj, vn))) {
                    Val idx = ctx.add(row_base, vj);
                    Val s = co_await ctx.loadIdx(src, idx);
                    co_await ctx.storeIdx(dst, idx,
                                          ctx.fmul(vdecay, s));
                    vj = ctx.add(vj, vone);
                }
                vi = ctx.add(vi, vone);
            }
            co_await ctx.barrier(bar_);
            vscale = ctx.add(vscale, vone);
        }

        // ---- Work-array zeroing phases ----------------------------
        Val vclear = ctx.imm(0);
        Val vclears = ctx.imm(config_.clear_passes);
        while (ctx.branch(kSiteClear, ctx.lt(vclear, vclears))) {
            uint32_t pass = t * config_.clear_passes +
                static_cast<uint32_t>(vclear.i);
            const auto &dst = grids_[(pass + 11) % G];

            Val vi = vrow_lo;
            while (ctx.branch(kSiteRowD, ctx.lt(vi, vrow_hi))) {
                Val row_base = ctx.mul(vi, vstride);
                Val vj = vone;
                while (ctx.branch(kSiteColD, ctx.le(vj, vn))) {
                    co_await ctx.storeIdx(dst, ctx.add(row_base, vj),
                                          vzero);
                    vj = ctx.add(vj, vone);
                }
                vi = ctx.add(vi, vone);
            }
            co_await ctx.barrier(bar_);
            vclear = ctx.add(vclear, vone);
        }

        // ---- Red-black SOR sweeps on grid 0 with rhs grid 1 -------
        const auto &q = grids_[0];
        const auto &rhs = grids_[1];
        Val vsweep = ctx.imm(0);
        Val vsweeps = ctx.imm(config_.sor_sweeps);
        while (ctx.branch(kSiteSweep, ctx.lt(vsweep, vsweeps))) {
            for (uint32_t color = 0; color < 2; ++color) {
                Val vcolor = ctx.imm(color);
                Val vi = vrow_lo;
                while (ctx.branch(kSiteRowB, ctx.lt(vi, vrow_hi))) {
                    Val row_base = ctx.mul(vi, vstride);
                    Val parity = ctx.band(ctx.add(vi, vcolor), vone);
                    Val vj = ctx.add(vone, parity);
                    while (ctx.branch(kSiteColB, ctx.le(vj, vn))) {
                        Val idx = ctx.add(row_base, vj);
                        Val up = co_await ctx.loadIdx(
                            q, ctx.sub(idx, vstride));
                        Val dn = co_await ctx.loadIdx(
                            q, ctx.add(idx, vstride));
                        Val lf = co_await ctx.loadIdx(
                            q, ctx.sub(idx, vone));
                        Val rt = co_await ctx.loadIdx(
                            q, ctx.add(idx, vone));
                        Val ctr = co_await ctx.loadIdx(q, idx);
                        Val src = co_await ctx.loadIdx(rhs, idx);
                        Val sum = ctx.fadd(ctx.fadd(up, dn),
                                           ctx.fadd(lf, rt));
                        Val gs = ctx.fadd(ctx.fmul(vquarter, sum),
                                          ctx.fmul(vquarter, src));
                        Val delta = ctx.fsub(gs, ctr);
                        Val res =
                            ctx.fadd(ctr, ctx.fmul(vomega, delta));
                        co_await ctx.storeIdx(q, idx, res);
                        vj = ctx.add(vj, vtwo);
                    }
                    vi = ctx.add(vi, vone);
                }
                co_await ctx.barrier(bar_);
            }
            vsweep = ctx.add(vsweep, vone);
        }

        vstep = ctx.add(vstep, vone);
    }

    co_await ctx.barrier(bar_);
}

void
Ocean::nativeStencil(std::vector<double> &dst,
                     const std::vector<double> &src,
                     const std::vector<double> &, uint32_t n)
{
    const uint32_t s = n + 2;
    for (uint32_t i = 1; i <= n; ++i) {
        for (uint32_t j = 1; j <= n; ++j) {
            size_t idx = static_cast<size_t>(i) * s + j;
            double sum = (src[idx - s] + src[idx + s]) +
                (src[idx - 1] + src[idx + 1]);
            dst[idx] = kQuarter * sum - src[idx];
        }
    }
}

void
Ocean::nativeSorSweep(std::vector<double> &grid,
                      const std::vector<double> &rhs, uint32_t n,
                      uint32_t color)
{
    const uint32_t s = n + 2;
    for (uint32_t i = 1; i <= n; ++i) {
        for (uint32_t j = 1 + ((i + color) & 1); j <= n; j += 2) {
            size_t idx = static_cast<size_t>(i) * s + j;
            double sum = (grid[idx - s] + grid[idx + s]) +
                (grid[idx - 1] + grid[idx + 1]);
            double gs = kQuarter * sum + kQuarter * rhs[idx];
            double delta = gs - grid[idx];
            grid[idx] = grid[idx] + kOmega * delta;
        }
    }
}

bool
Ocean::verify(const mp::Engine &) const
{
    // Replay the whole schedule natively from the seed.
    const uint32_t n = config_.n;
    const uint32_t G = config_.grids;
    const uint32_t s = n + 2;
    const size_t cells = static_cast<size_t>(stride()) * stride();
    Rng rng(config_.seed);
    std::vector<std::vector<double>> native(G,
                                            std::vector<double>(cells));
    for (uint32_t g = 0; g < G; ++g)
        for (size_t c = 0; c < cells; ++c)
            native[g][c] = rng.range(-1.0, 1.0);

    for (uint32_t t = 0; t < config_.timesteps; ++t) {
        for (uint32_t p = 0; p < config_.stencil_passes; ++p) {
            uint32_t pass = t * config_.stencil_passes + p;
            nativeStencil(native[(pass + 13) % G], native[pass % G],
                          native[pass % G], n);
        }
        for (uint32_t p = 0; p < config_.scale_passes; ++p) {
            uint32_t pass = t * config_.scale_passes + p;
            std::vector<double> &dst = native[(pass + 3) % G];
            const std::vector<double> &src = native[(pass + 17) % G];
            for (uint32_t i = 1; i <= n; ++i)
                for (uint32_t j = 1; j <= n; ++j) {
                    size_t idx = static_cast<size_t>(i) * s + j;
                    dst[idx] = kDecay * src[idx];
                }
        }
        for (uint32_t p = 0; p < config_.clear_passes; ++p) {
            uint32_t pass = t * config_.clear_passes + p;
            std::vector<double> &dst = native[(pass + 11) % G];
            for (uint32_t i = 1; i <= n; ++i)
                for (uint32_t j = 1; j <= n; ++j)
                    dst[static_cast<size_t>(i) * s + j] = 0.0;
        }
        for (uint32_t sweep = 0; sweep < config_.sor_sweeps; ++sweep) {
            nativeSorSweep(native[0], native[1], n, 0);
            nativeSorSweep(native[0], native[1], n, 1);
        }
    }

    for (uint32_t g = 0; g < G; ++g) {
        for (size_t c = 0; c < cells; ++c) {
            double got = grids_[g].get(c);
            double want = native[g][c];
            if (std::fabs(got - want) >
                1e-9 * std::max(1.0, std::fabs(want))) {
                return false;
            }
        }
    }
    return true;
}

} // namespace dsmem::apps
