#include "apps/app.h"

namespace dsmem::apps {

void
runApplication(mp::Engine &engine, Application &app)
{
    app.setup(engine);
    uint32_t procs = engine.config().num_procs;
    for (uint32_t p = 0; p < procs; ++p)
        engine.addThread(p, app.worker(engine.context(p), p));
    engine.run();
}

} // namespace dsmem::apps
