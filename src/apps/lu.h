#ifndef DSMEM_APPS_LU_H
#define DSMEM_APPS_LU_H

#include <cstdint>
#include <vector>

#include "apps/app.h"
#include "mp/arena.h"

namespace dsmem::apps {

/** LU problem size (the paper ran 200x200). */
struct LuConfig {
    uint32_t n = 128;
    uint64_t seed = 12345;
};

/**
 * LU — dense LU decomposition without pivoting (Section 3.3).
 *
 * The matrix is stored column-major; columns are statically assigned
 * to processors in an interleaved fashion. For each step k, the owner
 * of column k normalizes it and sets the column's event; every other
 * processor waits for that event, then uses the pivot column to
 * update the columns it owns. Synchronization is therefore
 * producer-consumer events plus two barriers — matching the paper's
 * Table 2 profile for LU (many wait-events, few set-events, two
 * barriers, no locks).
 */
class Lu : public Application
{
  public:
    explicit Lu(const LuConfig &config);

    std::string_view name() const override { return "LU"; }
    void setup(mp::Engine &engine) override;
    mp::Task worker(mp::ThreadContext &ctx, uint32_t tid) override;
    bool verify(const mp::Engine &engine) const override;

    const LuConfig &luConfig() const { return config_; }

  private:
    /**
     * Column stride in slots. Columns are padded by two slots (one
     * cache line) so that the power-of-two default size does not
     * alias whole columns onto the same direct-mapped sets — the
     * original's 200-column matrix had a non-power-of-two stride.
     */
    uint32_t colStride() const { return config_.n + 2; }

    size_t flatIndex(uint32_t row, uint32_t col) const
    {
        return static_cast<size_t>(col) * colStride() + row;
    }

    LuConfig config_;
    mp::ArenaArray<double> a_;            ///< Column-major matrix.
    std::vector<double> reference_;       ///< Initial values (native).
    std::vector<mp::EventId> col_ready_;  ///< One event per column.
    mp::BarrierId bar_ = 0;
};

} // namespace dsmem::apps

#endif // DSMEM_APPS_LU_H
