#ifndef DSMEM_APPS_PTHOR_H
#define DSMEM_APPS_PTHOR_H

#include <cstdint>
#include <vector>

#include "apps/app.h"
#include "mp/arena.h"
#include "mp/sync.h"

namespace dsmem::apps {

/** PTHOR circuit size (paper: ~11,000 gates, 5 clock cycles). */
struct PthorConfig {
    uint32_t gates = 8192; ///< Total elements (inputs/FFs/logic).
    uint32_t clocks = 5;   ///< Simulated clock cycles.
    uint64_t seed = 90210;
};

/**
 * PTHOR — parallel distributed-time logic simulator (Section 3.3).
 *
 * Simulates a synthesized gate-level circuit (AND/OR/XOR/NAND/NOT
 * gates, D flip-flops, primary inputs) for a number of clock cycles.
 * Gates are statically partitioned; each processor owns a task queue
 * of activated elements, protected by a lock. A processor drains its
 * queue, evaluates each element (chasing gate -> input id -> input
 * value through shared memory, the dependence chains Section 4.1.3
 * blames for PTHOR's residual read latency), and schedules changed
 * fanout onto the owners' queues under their locks. Wave fronts are
 * separated by barriers until the netlist settles, giving the paper's
 * Table 2 profile: thousands of lock operations and hundreds of
 * barriers. Element-type dispatch and change tests make branches
 * frequent and data-dependent (worst predictability of the five
 * applications, Table 3).
 *
 * Simplification vs. the original: PTHOR's Chandy-Misra null-message
 * protocol is replaced by barrier-delimited evaluation waves within
 * each clock cycle; both are conservative schedules of the same event
 * graph (see DESIGN.md).
 */
class Pthor : public Application
{
  public:
    explicit Pthor(const PthorConfig &config);

    std::string_view name() const override { return "PTHOR"; }
    void setup(mp::Engine &engine) override;
    mp::Task worker(mp::ThreadContext &ctx, uint32_t tid) override;
    bool verify(const mp::Engine &engine) const override;

    const PthorConfig &pthorConfig() const { return config_; }

    /** Element types (values stored in the type array). */
    enum GateType : int64_t {
        kInput = 0,
        kDff = 1,
        kAnd = 2,
        kOr = 3,
        kXor = 4,
        kNand = 5,
        kNot = 6,
    };

  private:
    uint32_t owner(uint32_t gate, uint32_t procs) const
    {
        return gate * procs / config_.gates;
    }

    /** Native mirror of the full simulation (for verify()). */
    std::vector<int64_t> nativeSimulate() const;

    PthorConfig config_;

    // Netlist (built in setup, mirrored natively for verify).
    std::vector<int64_t> type_host_;
    std::vector<int64_t> in0_host_, in1_host_;
    std::vector<std::vector<uint32_t>> fanout_host_;

    // Shared-memory netlist.
    mp::ArenaArray<int64_t> type_;
    mp::ArenaArray<int64_t> in0_, in1_;
    mp::ArenaArray<int64_t> val_;
    mp::ArenaArray<int64_t> fanout_ptr_; ///< gates+1 prefix offsets.
    mp::ArenaArray<int64_t> fanout_;
    mp::ArenaArray<int64_t> eval_table_; ///< type x (v0,v1) truth table.
    mp::ArenaArray<int64_t> work_flag_;  ///< Wave termination flag.
    mp::ArenaArray<int64_t> eval_count_; ///< Per-gate local statistics.
    mp::ArenaArray<int64_t> gate_time_;  ///< Per-gate local event time.
    mp::ArenaArray<int64_t> type_hist_;  ///< Per-proc type histogram.
    mp::ArenaArray<int64_t> event_buf_;  ///< Per-gate event window (4).

    // Double-buffered per-processor task queues.
    uint32_t queue_cap_ = 0;
    mp::ArenaArray<int64_t> queue_[2];  ///< procs x queue_cap each.
    mp::ArenaArray<int64_t> qlen_[2];   ///< procs entries, padded.
    std::vector<mp::LockId> qlocks_;
    mp::BarrierId bar_ = 0;
};

} // namespace dsmem::apps

#endif // DSMEM_APPS_PTHOR_H
