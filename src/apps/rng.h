#ifndef DSMEM_APPS_RNG_H
#define DSMEM_APPS_RNG_H

#include <cstdint>

namespace dsmem::apps {

/**
 * Deterministic 64-bit RNG (splitmix64) for application setup.
 *
 * Used only in untimed setup code (initial particle positions, random
 * netlists, wire endpoints). Timed application code that needs
 * randomness computes it through the DSL (e.g. MP3D's collision test)
 * so that the instructions and dependences appear in the trace.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). */
    uint64_t below(uint64_t bound) { return bound ? next() % bound : 0; }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double range(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

  private:
    uint64_t state_;
};

} // namespace dsmem::apps

#endif // DSMEM_APPS_RNG_H
