#include "apps/pthor.h"

#include <algorithm>
#include <stdexcept>

#include "apps/rng.h"
#include "mp/dsl.h"
#include "mp/subtask.h"

namespace dsmem::apps {

using mp::Val;

namespace {

const uint32_t kSiteClock = mp::siteId("pthor.clock_loop");
const uint32_t kSiteInput = mp::siteId("pthor.input_changed");
const uint32_t kSiteFf = mp::siteId("pthor.ff_changed");
const uint32_t kSiteAnyWork = mp::siteId("pthor.any_work");
const uint32_t kSiteDrain = mp::siteId("pthor.drain_loop");
const uint32_t kSiteSkip = mp::siteId("pthor.skip_latch");
const uint32_t kSiteChanged = mp::siteId("pthor.output_changed");
const uint32_t kSiteFanout = mp::siteId("pthor.fanout_loop");
const uint32_t kSiteEvScan = mp::siteId("pthor.event_scan_loop");
const uint32_t kSiteFanIn = mp::siteId("pthor.phase_fanout_loop");

constexpr uint64_t kHashA = 0x45d9f3b3u;
constexpr uint64_t kHashB = 0x119de1f3u;

/** Primary-input pattern bit; mirrored by the DSL computation. */
int64_t
nativePattern(uint64_t gate, uint64_t clock)
{
    int64_t a = static_cast<int64_t>(gate * kHashA);
    int64_t b = static_cast<int64_t>((clock + 1) * kHashB);
    int64_t h = a ^ b;
    return (h >> 17) & 1;
}

int64_t
nativeEval(int64_t type, int64_t v0, int64_t v1)
{
    switch (type) {
      case Pthor::kAnd:
        return v0 & v1;
      case Pthor::kOr:
        return v0 | v1;
      case Pthor::kXor:
        return v0 ^ v1;
      case Pthor::kNand:
        return (v0 & v1) ? 0 : 1;
      case Pthor::kNot:
        return v0 ? 0 : 1;
      default:
        return v0;
    }
}

} // namespace

Pthor::Pthor(const PthorConfig &config) : config_(config)
{
    if (config.gates < 64)
        throw std::invalid_argument("PTHOR needs >= 64 gates");
}

void
Pthor::setup(mp::Engine &engine)
{
    const uint32_t G = config_.gates;

    // Element types are interleaved across the id space (pattern of
    // period 24: 1/8 inputs, 1/6 flip-flops, the rest logic), so
    // every processor's contiguous partition holds a uniform mix —
    // as a real partitioner would produce.
    auto class_of = [](uint32_t g) -> int64_t {
        uint32_t m = g % 24;
        if (m == 0 || m == 8 || m == 16)
            return kInput;
        if (m == 4 || m == 7 || m == 12 || m == 20)
            return kDff;
        return kAnd; // Placeholder: concrete kind drawn below.
    };

    Rng rng(config_.seed);
    type_host_.assign(G, kAnd);
    in0_host_.assign(G, 0);
    in1_host_.assign(G, 0);
    fanout_host_.assign(G, {});

    std::vector<uint32_t> comb_ids;
    for (uint32_t g = 0; g < G; ++g) {
        int64_t cls = class_of(g);
        if (cls == kInput) {
            type_host_[g] = kInput;
        } else if (cls == kDff) {
            type_host_[g] = kDff;
        } else {
            // Skewed mix as in synthesized logic (NAND/AND heavy).
            static const int64_t kinds[] = {kAnd, kAnd, kAnd, kNand,
                                            kNand, kOr, kOr, kXor,
                                            kNot, kNot};
            type_host_[g] = kinds[rng.below(10)];
            comb_ids.push_back(g);
        }
    }
    if (comb_ids.size() < 8)
        throw std::invalid_argument("PTHOR has too few logic gates");

    // A combinational gate reads strictly earlier elements of any
    // kind (keeps the logic a DAG; flip-flop outputs only change at
    // clock boundaries). Real placed netlists are local: most
    // connections stay close to the gate, so most fanout stays on
    // the owning processor.
    auto pick_source = [&](uint32_t gate) -> uint32_t {
        uint64_t r = rng.below(20);
        uint32_t window = std::min<uint32_t>(gate, 64);
        if (r < 18)
            return gate - 1 - static_cast<uint32_t>(rng.below(window));
        return static_cast<uint32_t>(rng.below(gate));
    };

    for (uint32_t g : comb_ids) {
        int64_t t = type_host_[g];
        uint32_t a = pick_source(g);
        uint32_t b = (t == kNot) ? a : pick_source(g);
        in0_host_[g] = a;
        in1_host_[g] = b;
        fanout_host_[a].push_back(g);
        if (b != a)
            fanout_host_[b].push_back(g);
    }
    for (uint32_t g = 0; g < G; ++g) {
        if (type_host_[g] != kDff)
            continue;
        // A flip-flop latches a combinational gate, preferably local.
        uint32_t d = comb_ids[0];
        bool found = false;
        for (int attempt = 0; attempt < 8 && !found; ++attempt) {
            uint32_t window = std::min<uint32_t>(g, 64);
            if (window == 0)
                break;
            uint32_t cand =
                g - 1 - static_cast<uint32_t>(rng.below(window));
            if (type_host_[cand] != kInput &&
                type_host_[cand] != kDff) {
                d = cand;
                found = true;
            }
        }
        if (!found)
            d = comb_ids[rng.below(comb_ids.size())];
        in0_host_[g] = d;
        in1_host_[g] = d;
        fanout_host_[d].push_back(g);
    }

    // ---- Upload to the shared arena --------------------------------
    // Staggered so power-of-two gate counts do not alias a
    // processor's slices of the netlist arrays onto overlapping
    // direct-mapped set ranges; the stagger must exceed a
    // per-processor slice, hence ~9 KB.
    mp::Arena &arena = engine.arena();
    auto stagger = [&](uint32_t i) { arena.alloc(1153 + 16 * i); };
    stagger(1);
    type_ = mp::ArenaArray<int64_t>(&arena, G);
    stagger(2);
    in0_ = mp::ArenaArray<int64_t>(&arena, G);
    stagger(3);
    in1_ = mp::ArenaArray<int64_t>(&arena, G);
    stagger(4);
    val_ = mp::ArenaArray<int64_t>(&arena, G);
    stagger(5);
    fanout_ptr_ = mp::ArenaArray<int64_t>(&arena, G + 1);
    stagger(6);

    size_t edges = 0;
    for (uint32_t g = 0; g < G; ++g)
        edges += fanout_host_[g].size();
    fanout_ = mp::ArenaArray<int64_t>(&arena, edges == 0 ? 1 : edges);

    size_t off = 0;
    for (uint32_t g = 0; g < G; ++g) {
        type_.set(g, type_host_[g]);
        in0_.set(g, in0_host_[g]);
        in1_.set(g, in1_host_[g]);
        val_.set(g, 0);
        fanout_ptr_.set(g, static_cast<int64_t>(off));
        for (uint32_t t : fanout_host_[g])
            fanout_.set(off++, t);
    }
    fanout_ptr_.set(G, static_cast<int64_t>(off));

    // Element-evaluation truth table: row per type, column per input
    // combination — PTHOR evaluates elements by table lookup rather
    // than branching on the type.
    eval_table_ = mp::ArenaArray<int64_t>(&arena, 7 * 4);
    for (int64_t t = 0; t < 7; ++t)
        for (int64_t v0 = 0; v0 < 2; ++v0)
            for (int64_t v1 = 0; v1 < 2; ++v1)
                eval_table_.set(static_cast<size_t>(t * 4 + v0 * 2 + v1),
                                nativeEval(t, v0, v1));
    work_flag_ = mp::ArenaArray<int64_t>(&arena, 1, /*padded=*/true);
    work_flag_.set(0, 0);

    // Per-element bookkeeping of the distributed-time protocol:
    // activation counts and local event times (owner-private), plus a
    // per-processor evaluated-type histogram. All are indexed by the
    // owner only, so this is the local working set real PTHOR spends
    // most of its references on.
    stagger(7);
    eval_count_ = mp::ArenaArray<int64_t>(&arena, G);
    stagger(8);
    gate_time_ = mp::ArenaArray<int64_t>(&arena, G);
    for (uint32_t g = 0; g < G; ++g) {
        eval_count_.set(g, 0);
        gate_time_.set(g, 0);
    }
    const size_t hist_slots =
        static_cast<size_t>(engine.config().num_procs) * 16;
    type_hist_ = mp::ArenaArray<int64_t>(&arena, hist_slots, true);
    for (size_t i = 0; i < hist_slots; ++i)
        type_hist_.set(i, 0);
    stagger(9);
    event_buf_ =
        mp::ArenaArray<int64_t>(&arena, static_cast<size_t>(G) * 4);
    for (size_t i = 0; i < static_cast<size_t>(G) * 4; ++i)
        event_buf_.set(i, 0);

    const uint32_t procs = engine.config().num_procs;
    // Bound: per wave, at most every edge into a processor's gates
    // can be pushed (duplicates included), plus the cold-start batch.
    queue_cap_ = 4 * (static_cast<uint32_t>(edges) + G) / procs;
    for (int b = 0; b < 2; ++b) {
        queue_[b] = mp::ArenaArray<int64_t>(
            &arena, static_cast<size_t>(procs) * queue_cap_, true);
        qlen_[b] = mp::ArenaArray<int64_t>(
            &arena, static_cast<size_t>(procs) * 2, true);
        for (uint32_t p = 0; p < procs; ++p)
            qlen_[b].set(2 * p, 0);
    }

    qlocks_.clear();
    for (uint32_t p = 0; p < procs; ++p)
        qlocks_.push_back(engine.createLock());
    bar_ = engine.createBarrier();
}

mp::Task
Pthor::worker(mp::ThreadContext &ctx, uint32_t tid)
{
    const uint32_t G = config_.gates;
    const uint32_t procs = ctx.numProcs();
    const uint32_t lo = tid * G / procs;
    const uint32_t hi = (tid + 1) * G / procs;

    co_await ctx.barrier(bar_);

    Val one = ctx.imm(1);
    Val zero = ctx.imm(0);
    Val vhash_a = ctx.imm(static_cast<int64_t>(kHashA));
    Val vhash_b = ctx.imm(static_cast<int64_t>(kHashB));

    uint32_t parity = 0;

    // Schedule gate @tgt (a Val) onto its owner's next-wave queue.
    // Defined as a SubTask so both activation sites share it.
    auto push_fanout = [&](Val tgt, uint32_t nxt) -> mp::SubTask<void> {
        uint32_t own = owner(static_cast<uint32_t>(tgt.i), procs);
        co_await ctx.lock(qlocks_[own]);
        Val vslot = ctx.imm(2 * own);
        Val len = co_await ctx.loadIdx(qlen_[nxt], vslot);
        if (len.i >= static_cast<int64_t>(queue_cap_))
            throw std::runtime_error("PTHOR task queue overflow");
        Val qidx = ctx.add(ctx.imm(static_cast<int64_t>(own) *
                                   queue_cap_), len);
        co_await ctx.storeIdx(queue_[nxt], qidx, tgt);
        co_await ctx.storeIdx(qlen_[nxt], vslot, ctx.add(len, one));
        co_await ctx.unlock(qlocks_[own]);
    };

    Val vclock = ctx.imm(0);
    Val vclocks = ctx.imm(config_.clocks);
    while (ctx.branch(kSiteClock, ctx.lt(vclock, vclocks))) {
        uint32_t clock = static_cast<uint32_t>(vclock.i);
        uint32_t nxt = parity;

        // ---- Phase A: update primary inputs and flip-flops --------
        for (uint32_t g = lo; g < hi; ++g) {
            int64_t t = type_host_[g];
            if (t == kInput) {
                Val vg = ctx.imm(g);
                Val ov = co_await ctx.loadIdx(val_, vg);
                Val h = ctx.bxor(
                    ctx.mul(vg, vhash_a),
                    ctx.mul(ctx.add(vclock, one), vhash_b));
                Val nv = ctx.band(ctx.shr(h, ctx.imm(17)), one);
                if (ctx.branch(kSiteInput, ctx.ne(nv, ov))) {
                    co_await ctx.storeIdx(val_, vg, nv);
                    Val fp = co_await ctx.loadIdx(fanout_ptr_, vg);
                    Val fe = co_await ctx.loadIdx(fanout_ptr_,
                                                  ctx.add(vg, one));
                    while (ctx.branch(kSiteFanIn, ctx.lt(fp, fe))) {
                        Val tgt = co_await ctx.loadIdx(fanout_, fp);
                        co_await push_fanout(tgt, nxt);
                        fp = ctx.add(fp, one);
                    }
                }
            } else if (t == kDff) {
                Val vg = ctx.imm(g);
                Val vi0 = co_await ctx.loadIdx(in0_, vg);
                Val dv = co_await ctx.loadIdx(val_, vi0);
                Val ov = co_await ctx.loadIdx(val_, vg);
                if (ctx.branch(kSiteFf, ctx.ne(dv, ov))) {
                    co_await ctx.storeIdx(val_, vg, dv);
                    Val fp = co_await ctx.loadIdx(fanout_ptr_, vg);
                    Val fe = co_await ctx.loadIdx(fanout_ptr_,
                                                  ctx.add(vg, one));
                    while (ctx.branch(kSiteFanIn, ctx.lt(fp, fe))) {
                        Val tgt = co_await ctx.loadIdx(fanout_, fp);
                        co_await push_fanout(tgt, nxt);
                        fp = ctx.add(fp, one);
                    }
                }
            }
        }

        // Cold start: activate every owned logic gate once.
        if (clock == 0) {
            co_await ctx.lock(qlocks_[tid]);
            Val vslot = ctx.imm(2 * tid);
            Val len = co_await ctx.loadIdx(qlen_[nxt], vslot);
            Val base = ctx.imm(static_cast<int64_t>(tid) * queue_cap_);
            for (uint32_t g = lo; g < hi; ++g) {
                int64_t t = type_host_[g];
                if (t == kInput || t == kDff)
                    continue;
                co_await ctx.storeIdx(queue_[nxt], ctx.add(base, len),
                                      ctx.imm(g));
                len = ctx.add(len, one);
            }
            co_await ctx.storeIdx(qlen_[nxt], vslot, len);
            co_await ctx.unlock(qlocks_[tid]);
        }

        // ---- Evaluation waves until the netlist settles ------------
        for (;;) {
            co_await ctx.barrier(bar_);

            // All pushes settled: processor 0 publishes whether any
            // queue still holds work (a single shared flag keeps the
            // other fifteen processors from polling every length).
            if (tid == 0) {
                Val any = zero;
                for (uint32_t p = 0; p < procs; ++p) {
                    Val len = co_await ctx.loadIdx(qlen_[parity],
                                                   ctx.imm(2 * p));
                    any = ctx.bor(any, ctx.gt(len, zero));
                }
                co_await ctx.storeIdx(work_flag_, zero, any);
            }
            co_await ctx.barrier(bar_);

            Val work = co_await ctx.loadIdx(work_flag_, zero);
            if (!ctx.branch(kSiteAnyWork, work))
                break;

            uint32_t cur = parity;
            uint32_t nxt_wave = parity ^ 1;
            Val vslot = ctx.imm(2 * tid);
            Val vbase = ctx.imm(static_cast<int64_t>(tid) * queue_cap_);
            Val vlen = co_await ctx.loadIdx(qlen_[cur], vslot);
            Val vk = zero;
            while (ctx.branch(kSiteDrain, ctx.lt(vk, vlen))) {
                Val vg =
                    co_await ctx.loadIdx(queue_[cur], ctx.add(vbase, vk));
                Val vt = co_await ctx.loadIdx(type_, vg);
                // Latches and inputs are only re-evaluated at clock
                // boundaries.
                if (ctx.branch(kSiteSkip, ctx.gt(vt, one))) {
                    Val vi0 = co_await ctx.loadIdx(in0_, vg);
                    Val v0 = co_await ctx.loadIdx(val_, vi0);
                    Val vi1 = co_await ctx.loadIdx(in1_, vg);
                    Val v1 = co_await ctx.loadIdx(val_, vi1);
                    // Table-lookup evaluation (PTHOR evaluates
                    // elements from truth tables, not type branches).
                    Val tidx = ctx.add(ctx.shl(vt, ctx.imm(2)),
                                       ctx.add(ctx.shl(v0, one), v1));
                    Val nv = co_await ctx.loadIdx(eval_table_, tidx);
                    Val ov = co_await ctx.loadIdx(val_, vg);

                    // Distributed-time bookkeeping on owner-private
                    // state: activation count, local event time, and
                    // the per-processor evaluated-type histogram.
                    Val ec = co_await ctx.loadIdx(eval_count_, vg);
                    co_await ctx.storeIdx(eval_count_, vg,
                                          ctx.add(ec, one));
                    Val gt = co_await ctx.loadIdx(gate_time_, vg);
                    Val mix = ctx.bxor(ctx.shl(gt, one), ec);
                    Val tnext = ctx.add(ctx.imax(mix, gt),
                                        ctx.add(vt, one));
                    Val bounded = ctx.band(tnext, ctx.imm((1 << 20) - 1));
                    co_await ctx.storeIdx(gate_time_, vg, bounded);
                    Val hidx = ctx.add(ctx.imm(tid * 16), vt);
                    Val th = co_await ctx.loadIdx(type_hist_, hidx);
                    co_await ctx.storeIdx(type_hist_, hidx,
                                          ctx.add(th, one));

                    // Scan the element's pending-event window and
                    // append this activation (owner-private data).
                    Val ebase = ctx.shl(vg, ctx.imm(2));
                    Val acc = zero;
                    Val ve = zero;
                    Val vfour = ctx.imm(4);
                    while (ctx.branch(kSiteEvScan, ctx.lt(ve, vfour))) {
                        Val ev = co_await ctx.loadIdx(
                            event_buf_, ctx.add(ebase, ve));
                        acc = ctx.add(acc, ctx.imax(ev, gt));
                        ve = ctx.add(ve, one);
                    }
                    Val eslot = ctx.add(ebase, ctx.band(ec, ctx.imm(3)));
                    co_await ctx.storeIdx(
                        event_buf_, eslot,
                        ctx.band(acc, ctx.imm((1 << 20) - 1)));

                    if (ctx.branch(kSiteChanged, ctx.ne(nv, ov))) {
                        co_await ctx.storeIdx(val_, vg, nv);
                        Val fp = co_await ctx.loadIdx(fanout_ptr_, vg);
                        Val fe = co_await ctx.loadIdx(
                            fanout_ptr_, ctx.add(vg, one));
                        while (ctx.branch(kSiteFanout,
                                          ctx.lt(fp, fe))) {
                            Val tgt = co_await ctx.loadIdx(fanout_, fp);
                            co_await push_fanout(tgt, nxt_wave);
                            fp = ctx.add(fp, one);
                        }
                    }
                }
                vk = ctx.add(vk, one);
            }
            co_await ctx.storeIdx(qlen_[cur], vslot, zero);

            parity ^= 1;
        }

        vclock = ctx.add(vclock, one);
    }

    co_await ctx.barrier(bar_);
}

std::vector<int64_t>
Pthor::nativeSimulate() const
{
    const uint32_t G = config_.gates;
    std::vector<int64_t> val(G, 0);
    for (uint32_t c = 0; c < config_.clocks; ++c) {
        // Inputs and flip-flops update simultaneously from the
        // settled previous state (flip-flop inputs are combinational
        // gates, so ordering within the phase does not matter).
        std::vector<int64_t> next_val = val;
        for (uint32_t g = 0; g < G; ++g) {
            if (type_host_[g] == kInput)
                next_val[g] = nativePattern(g, c);
            else if (type_host_[g] == kDff)
                next_val[g] = val[in0_host_[g]];
        }
        val = std::move(next_val);
        // Combinational settle: inputs of gate g have smaller ids (or
        // are inputs/FFs), so one ascending pass reaches the fixpoint.
        for (uint32_t g = 0; g < G; ++g) {
            int64_t t = type_host_[g];
            if (t == kInput || t == kDff)
                continue;
            val[g] = nativeEval(t, val[in0_host_[g]],
                                val[in1_host_[g]]);
        }
    }
    return val;
}

bool
Pthor::verify(const mp::Engine &) const
{
    std::vector<int64_t> expected = nativeSimulate();
    for (uint32_t g = 0; g < config_.gates; ++g)
        if (val_.get(g) != expected[g])
            return false;
    return true;
}

} // namespace dsmem::apps
