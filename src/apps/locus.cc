#include "apps/locus.h"

#include <algorithm>
#include <stdexcept>

#include "apps/rng.h"
#include "mp/dsl.h"

namespace dsmem::apps {

using mp::Val;

namespace {

const uint32_t kSiteClaim = mp::siteId("locus.claim_loop");
const uint32_t kSiteCand = mp::siteId("locus.candidate_loop");
const uint32_t kSiteHsum = mp::siteId("locus.horizontal_sum");
const uint32_t kSiteV1sum = mp::siteId("locus.vertical1_sum");
const uint32_t kSiteV2sum = mp::siteId("locus.vertical2_sum");
const uint32_t kSiteMin = mp::siteId("locus.min_test");
const uint32_t kSiteHinc = mp::siteId("locus.horizontal_inc");
const uint32_t kSiteV1inc = mp::siteId("locus.vertical1_inc");
const uint32_t kSiteV2inc = mp::siteId("locus.vertical2_inc");
const uint32_t kSiteHrip = mp::siteId("locus.horizontal_rip");
const uint32_t kSiteV1rip = mp::siteId("locus.vertical1_rip");
const uint32_t kSiteV2rip = mp::siteId("locus.vertical2_rip");

constexpr uint32_t kNumRegions = 8;

} // namespace

Locus::Locus(const LocusConfig &config) : config_(config)
{
    if (config.width < 16 || config.height < 2)
        throw std::invalid_argument("LOCUS cost array too small");
    if (config.max_span < 2 || config.max_span >= config.width)
        throw std::invalid_argument("LOCUS max_span out of range");
    if (config.max_span > 2 * (config.width / kNumRegions))
        throw std::invalid_argument(
            "LOCUS max_span must fit in two region locks");
}

void
Locus::setup(mp::Engine &engine)
{
    mp::Arena &arena = engine.arena();
    const size_t cells =
        static_cast<size_t>(config_.width) * config_.height;
    cost_ = mp::ArenaArray<int64_t>(&arena, cells, /*padded=*/true);
    for (size_t c = 0; c < cells; ++c)
        cost_.set(c, 0);
    next_wire_ = mp::ArenaArray<int64_t>(&arena, config_.iterations,
                                         /*padded=*/true);
    for (uint32_t pass = 0; pass < config_.iterations; ++pass)
        next_wire_.set(pass, 0);
    routed_ = mp::ArenaArray<int64_t>(&arena, config_.wires,
                                      /*padded=*/true);

    Rng rng(config_.seed);
    wires_.clear();
    wires_.reserve(config_.wires);
    for (uint32_t w = 0; w < config_.wires; ++w) {
        uint32_t span =
            2 + static_cast<uint32_t>(rng.below(config_.max_span - 1));
        uint32_t x1 =
            static_cast<uint32_t>(rng.below(config_.width - span));
        uint32_t x2 = x1 + span;
        uint32_t y1 = static_cast<uint32_t>(rng.below(config_.height));
        uint32_t y2 = static_cast<uint32_t>(rng.below(config_.height));
        wires_.push_back({x1, y1, x2, y2});
        routed_.set(w, -1);
    }

    queue_lock_ = engine.createLock();
    region_locks_.clear();
    for (uint32_t r = 0; r < kNumRegions; ++r)
        region_locks_.push_back(engine.createLock());
    bar_ = engine.createBarrier();
}

mp::Task
Locus::worker(mp::ThreadContext &ctx, uint32_t)
{
    const uint32_t region_width = config_.width / kNumRegions;

    co_await ctx.barrier(bar_);

    Val one = ctx.imm(1);
    Val zero = ctx.imm(0);
    Val vwidth = ctx.imm(config_.width);
    Val vnwires = ctx.imm(config_.wires);

    for (uint32_t pass = 0; pass < config_.iterations; ++pass) {
    Val vpass = ctx.imm(pass);
    for (;;) {
        // ---- Claim the next unrouted wire -------------------------
        co_await ctx.lock(queue_lock_);
        Val vmine = co_await ctx.loadIdx(next_wire_, vpass);
        bool have_wire = ctx.branch(kSiteClaim, ctx.lt(vmine, vnwires));
        if (have_wire) {
            co_await ctx.storeIdx(next_wire_, vpass,
                                  ctx.add(vmine, one));
        }
        co_await ctx.unlock(queue_lock_);
        if (!have_wire)
            break;

        const Wire &wire = wires_[static_cast<size_t>(vmine.i)];
        const uint32_t ylo = std::min(wire.y1, wire.y2);
        const uint32_t yhi = std::max(wire.y1, wire.y2);
        const uint32_t wr1 = wire.x1 / region_width;
        const uint32_t wr2 =
            std::min(wire.x2 / region_width, kNumRegions - 1);

        Val vx1 = ctx.imm(wire.x1);
        Val vx2 = ctx.imm(wire.x2);
        Val vy1 = ctx.imm(wire.y1);
        Val vy2 = ctx.imm(wire.y2);

        // ---- Rip up the previous pass's route ---------------------
        if (pass > 0) {
            Val old_row = co_await ctx.loadIdx(routed_, vmine);
            const uint32_t oyb =
                static_cast<uint32_t>(old_row.i);
            for (uint32_t r = wr1; r <= wr2; ++r)
                co_await ctx.lock(region_locks_[r]);
            Val row_base = ctx.mul(old_row, vwidth);
            Val vx = vx1;
            while (ctx.branch(kSiteHrip, ctx.le(vx, vx2))) {
                Val idx = ctx.add(row_base, vx);
                Val c = co_await ctx.loadIdx(cost_, idx);
                co_await ctx.storeIdx(cost_, idx, ctx.sub(c, one));
                vx = ctx.add(vx, one);
            }
            Val dir1 = ctx.imm(oyb >= wire.y1 ? 1 : -1);
            Val vy = vy1;
            while (ctx.branch(kSiteV1rip, ctx.ne(vy, old_row))) {
                Val idx = ctx.add(ctx.mul(vy, vwidth), vx1);
                Val c = co_await ctx.loadIdx(cost_, idx);
                co_await ctx.storeIdx(cost_, idx, ctx.sub(c, one));
                vy = ctx.add(vy, dir1);
            }
            Val dir2 = ctx.imm(oyb >= wire.y2 ? 1 : -1);
            vy = vy2;
            while (ctx.branch(kSiteV2rip, ctx.ne(vy, old_row))) {
                Val idx = ctx.add(ctx.mul(vy, vwidth), vx2);
                Val c = co_await ctx.loadIdx(cost_, idx);
                co_await ctx.storeIdx(cost_, idx, ctx.sub(c, one));
                vy = ctx.add(vy, dir2);
            }
            for (uint32_t r = wr2 + 1; r-- > wr1;)
                co_await ctx.unlock(region_locks_[r]);
        }

        // ---- Evaluate every bend row between the endpoints --------
        Val best_cost = ctx.imm(INT64_MAX / 2);
        Val best_row = ctx.imm(ylo);
        Val vyb = ctx.imm(ylo);
        Val vyhi = ctx.imm(yhi);
        while (ctx.branch(kSiteCand, ctx.le(vyb, vyhi))) {
            uint32_t yb = static_cast<uint32_t>(vyb.i);
            Val sum = zero;

            // Horizontal segment on row yb.
            Val row_base = ctx.mul(vyb, vwidth);
            Val vx = vx1;
            while (ctx.branch(kSiteHsum, ctx.le(vx, vx2))) {
                Val c = co_await ctx.loadIdx(cost_,
                                             ctx.add(row_base, vx));
                sum = ctx.add(sum, c);
                vx = ctx.add(vx, one);
            }

            // Vertical run at x1 from y1 toward yb (exclusive).
            Val dir1 = ctx.imm(yb >= wire.y1 ? 1 : -1);
            Val vy = vy1;
            while (ctx.branch(kSiteV1sum, ctx.ne(vy, vyb))) {
                Val c = co_await ctx.loadIdx(
                    cost_, ctx.add(ctx.mul(vy, vwidth), vx1));
                sum = ctx.add(sum, c);
                vy = ctx.add(vy, dir1);
            }

            // Vertical run at x2 from y2 toward yb (exclusive).
            Val dir2 = ctx.imm(yb >= wire.y2 ? 1 : -1);
            vy = vy2;
            while (ctx.branch(kSiteV2sum, ctx.ne(vy, vyb))) {
                Val c = co_await ctx.loadIdx(
                    cost_, ctx.add(ctx.mul(vy, vwidth), vx2));
                sum = ctx.add(sum, c);
                vy = ctx.add(vy, dir2);
            }

            if (ctx.branch(kSiteMin, ctx.lt(sum, best_cost))) {
                best_cost = sum;
                best_row = vyb;
            }
            vyb = ctx.add(vyb, one);
        }

        // ---- Commit the winning route under the region locks ------
        const uint32_t yb = static_cast<uint32_t>(best_row.i);
        for (uint32_t r = wr1; r <= wr2; ++r)
            co_await ctx.lock(region_locks_[r]);

        Val row_base = ctx.mul(best_row, vwidth);
        Val vx = vx1;
        while (ctx.branch(kSiteHinc, ctx.le(vx, vx2))) {
            Val idx = ctx.add(row_base, vx);
            Val c = co_await ctx.loadIdx(cost_, idx);
            co_await ctx.storeIdx(cost_, idx, ctx.add(c, one));
            vx = ctx.add(vx, one);
        }
        Val dir1 = ctx.imm(yb >= wire.y1 ? 1 : -1);
        Val vy = vy1;
        while (ctx.branch(kSiteV1inc, ctx.ne(vy, best_row))) {
            Val idx = ctx.add(ctx.mul(vy, vwidth), vx1);
            Val c = co_await ctx.loadIdx(cost_, idx);
            co_await ctx.storeIdx(cost_, idx, ctx.add(c, one));
            vy = ctx.add(vy, dir1);
        }
        Val dir2 = ctx.imm(yb >= wire.y2 ? 1 : -1);
        vy = vy2;
        while (ctx.branch(kSiteV2inc, ctx.ne(vy, best_row))) {
            Val idx = ctx.add(ctx.mul(vy, vwidth), vx2);
            Val c = co_await ctx.loadIdx(cost_, idx);
            co_await ctx.storeIdx(cost_, idx, ctx.add(c, one));
            vy = ctx.add(vy, dir2);
        }

        for (uint32_t r = wr2 + 1; r-- > wr1;)
            co_await ctx.unlock(region_locks_[r]);

        co_await ctx.storeIdx(routed_, vmine, best_row);
    }
    // All wires of this pass are placed before any rip-up of the
    // next pass begins.
    co_await ctx.barrier(bar_);
    }
}

bool
Locus::verify(const mp::Engine &) const
{
    // Every wire must have been claimed exactly once per pass.
    for (uint32_t pass = 0; pass < config_.iterations; ++pass)
        if (next_wire_.get(pass) != static_cast<int64_t>(config_.wires))
            return false;

    // Every candidate route of a wire has the same cell count
    // (bend row confined between the endpoints), so the total cost
    // mass is route-independent and exactly checkable.
    int64_t expected = 0;
    for (uint32_t w = 0; w < config_.wires; ++w) {
        const Wire &wire = wires_[w];
        uint32_t dy = wire.y1 > wire.y2 ? wire.y1 - wire.y2
                                        : wire.y2 - wire.y1;
        expected += (wire.x2 - wire.x1 + 1) + dy;

        int64_t row = routed_.get(w);
        if (row < std::min(wire.y1, wire.y2) ||
            row > std::max(wire.y1, wire.y2)) {
            return false;
        }
    }

    int64_t total = 0;
    const size_t cells =
        static_cast<size_t>(config_.width) * config_.height;
    for (size_t c = 0; c < cells; ++c) {
        int64_t v = cost_.get(c);
        if (v < 0)
            return false;
        total += v;
    }
    return total == expected;
}

} // namespace dsmem::apps
