#include "apps/mp3d.h"

#include <cmath>
#include <stdexcept>

#include "apps/rng.h"
#include "mp/dsl.h"

namespace dsmem::apps {

using mp::Val;

namespace {

const uint32_t kSiteStep = mp::siteId("mp3d.step_loop");
const uint32_t kSiteParticle = mp::siteId("mp3d.particle_loop");
const uint32_t kSiteLoX = mp::siteId("mp3d.reflect_lo_x");
const uint32_t kSiteHiX = mp::siteId("mp3d.reflect_hi_x");
const uint32_t kSiteLoY = mp::siteId("mp3d.reflect_lo_y");
const uint32_t kSiteHiY = mp::siteId("mp3d.reflect_hi_y");
const uint32_t kSiteLoZ = mp::siteId("mp3d.reflect_lo_z");
const uint32_t kSiteHiZ = mp::siteId("mp3d.reflect_hi_z");
const uint32_t kSiteCollide = mp::siteId("mp3d.collide_test");
const uint32_t kSiteDense = mp::siteId("mp3d.dense_cell_test");
const uint32_t kSiteReset = mp::siteId("mp3d.reset_loop");

/** Collision decision hash; mirrored exactly by verify(). */
constexpr uint64_t kHashA = 2654435761u;
constexpr uint64_t kHashB = 0x9e3779b9u;

bool
nativeCollides(uint64_t p, uint64_t step)
{
    // Mirrors the DSL computation exactly (wrapping multiply, xor,
    // arithmetic shift on int64, mask).
    int64_t a = static_cast<int64_t>(p * kHashA);
    int64_t b = static_cast<int64_t>((step + 1) * kHashB);
    int64_t h = a ^ b;
    return ((h >> 13) & 7) == 0;
}

} // namespace

Mp3d::Mp3d(const Mp3dConfig &config) : config_(config)
{
    if (config.particles < 16)
        throw std::invalid_argument("MP3D needs >= 16 particles");
    if (config.cells_x < 2 || config.cells_y < 2 || config.cells_z < 2)
        throw std::invalid_argument("MP3D needs >= 2 cells per axis");
}

void
Mp3d::setup(mp::Engine &engine)
{
    const uint32_t n = config_.particles;
    mp::Arena &arena = engine.arena();
    // Stagger the parallel arrays so power-of-two particle counts do
    // not alias a processor's slices of the different arrays onto
    // overlapping direct-mapped set ranges (the original's
    // array-of-structs layout has no such systematic conflict). The
    // stagger must exceed a per-processor slice, hence ~9 KB.
    auto stagger = [&](uint32_t i) { arena.alloc(1153 + 16 * i); };
    stagger(1);
    px_ = mp::ArenaArray<double>(&arena, n);
    stagger(2);
    py_ = mp::ArenaArray<double>(&arena, n);
    stagger(3);
    pz_ = mp::ArenaArray<double>(&arena, n);
    stagger(4);
    vx_ = mp::ArenaArray<double>(&arena, n);
    stagger(5);
    vy_ = mp::ArenaArray<double>(&arena, n);
    stagger(6);
    vz_ = mp::ArenaArray<double>(&arena, n);
    stagger(7);
    cell_count_ = mp::ArenaArray<int64_t>(&arena, numCells());
    stagger(8);
    cell_partner_ = mp::ArenaArray<int64_t>(&arena, numCells());
    collide_count_ = mp::ArenaArray<int64_t>(&arena, 1, /*padded=*/true);
    momentum_ = mp::ArenaArray<double>(&arena, 2, /*padded=*/true);

    Rng rng(config_.seed);
    const uint32_t procs = engine.config().num_procs;
    init_state_.clear();
    init_state_.reserve(6 * static_cast<size_t>(n));
    for (uint32_t p = 0; p < n; ++p) {
        // Particles start in their owner's slab of the wind tunnel
        // (MP3D decomposes space); they drift across slab boundaries
        // over the timesteps, which is the communication the paper's
        // miss rates reflect.
        uint32_t owner = p * procs / n;
        double slab_lo =
            static_cast<double>(owner) * config_.cells_x / procs;
        double slab_hi =
            static_cast<double>(owner + 1) * config_.cells_x / procs;
        double x = rng.range(slab_lo, slab_hi);
        double y = rng.range(0.0, config_.cells_y);
        double z = rng.range(0.0, config_.cells_z);
        double ux = rng.range(-0.5, 0.5);
        double uy = rng.range(-0.5, 0.5);
        double uz = rng.range(-0.5, 0.5);
        px_.set(p, x);
        py_.set(p, y);
        pz_.set(p, z);
        vx_.set(p, ux);
        vy_.set(p, uy);
        vz_.set(p, uz);
        init_state_.insert(init_state_.end(), {x, y, z, ux, uy, uz});
    }
    for (uint32_t c = 0; c < numCells(); ++c) {
        cell_count_.set(c, 0);
        cell_partner_.set(c, static_cast<int64_t>(rng.below(n)));
    }
    collide_count_.set(0, 0);
    momentum_.set(0, 0.0);
    momentum_.set(1, 0.0);

    bar_ = engine.createBarrier();
    count_lock_ = engine.createLock();
    momentum_lock_ = engine.createLock();
}

mp::Task
Mp3d::worker(mp::ThreadContext &ctx, uint32_t tid)
{
    const uint32_t n = config_.particles;
    const uint32_t procs = ctx.numProcs();
    const uint32_t lo = tid * n / procs;
    const uint32_t hi = (tid + 1) * n / procs;
    const uint32_t cells = numCells();
    const uint32_t cells_lo = tid * cells / procs;
    const uint32_t cells_hi = (tid + 1) * cells / procs;

    co_await ctx.barrier(bar_);

    Val one = ctx.imm(1);
    Val zero = ctx.imm(0);
    Val fzero = ctx.fimm(0.0);
    Val half = ctx.fimm(0.5);
    Val vxmax = ctx.fimm(config_.cells_x);
    Val vymax = ctx.fimm(config_.cells_y);
    Val vzmax = ctx.fimm(config_.cells_z);
    Val vcx_max = ctx.imm(config_.cells_x - 1);
    Val vcy_max = ctx.imm(config_.cells_y - 1);
    Val vcz_max = ctx.imm(config_.cells_z - 1);
    Val vplane = ctx.imm(config_.cells_x * config_.cells_y);
    Val vrow = ctx.imm(config_.cells_x);
    Val vhash_a = ctx.imm(static_cast<int64_t>(kHashA));
    Val vhash_b = ctx.imm(static_cast<int64_t>(kHashB));

    Val vstep = ctx.imm(0);
    Val vsteps = ctx.imm(config_.timesteps);
    while (ctx.branch(kSiteStep, ctx.lt(vstep, vsteps))) {
        // ---- Phase 1: reset the owned slice of the space array ----
        Val vc = ctx.imm(cells_lo);
        Val vc_hi = ctx.imm(cells_hi);
        while (ctx.branch(kSiteReset, ctx.lt(vc, vc_hi))) {
            co_await ctx.storeIdx(cell_count_, vc, zero);
            vc = ctx.add(vc, one);
        }
        co_await ctx.barrier(bar_);

        // ---- Phase 2: move and collide owned particles ------------
        Val local_collisions = zero;
        Val local_momentum = fzero;
        Val local_energy = fzero;
        Val vp = ctx.imm(lo);
        Val vhi = ctx.imm(hi);
        while (ctx.branch(kSiteParticle, ctx.lt(vp, vhi))) {
            // Per-axis advance with each loaded value consumed
            // immediately, as the original's compiled code does — so
            // a non-blocking-read (SS) processor gains little
            // (Section 4.1.1).
            Val x = co_await ctx.loadIdx(px_, vp);
            Val ux = co_await ctx.loadIdx(vx_, vp);
            x = ctx.fadd(x, ux);
            if (ctx.branch(kSiteLoX, ctx.flt(x, fzero))) {
                x = ctx.fneg(x);
                ux = ctx.fneg(ux);
            }
            if (ctx.branch(kSiteHiX, ctx.fgt(x, vxmax))) {
                x = ctx.fsub(ctx.fadd(vxmax, vxmax), x);
                ux = ctx.fneg(ux);
            }
            co_await ctx.storeIdx(px_, vp, x);

            Val y = co_await ctx.loadIdx(py_, vp);
            Val uy = co_await ctx.loadIdx(vy_, vp);
            y = ctx.fadd(y, uy);
            if (ctx.branch(kSiteLoY, ctx.flt(y, fzero))) {
                y = ctx.fneg(y);
                uy = ctx.fneg(uy);
            }
            if (ctx.branch(kSiteHiY, ctx.fgt(y, vymax))) {
                y = ctx.fsub(ctx.fadd(vymax, vymax), y);
                uy = ctx.fneg(uy);
            }
            co_await ctx.storeIdx(py_, vp, y);

            Val z = co_await ctx.loadIdx(pz_, vp);
            Val uz = co_await ctx.loadIdx(vz_, vp);
            z = ctx.fadd(z, uz);
            if (ctx.branch(kSiteLoZ, ctx.flt(z, fzero))) {
                z = ctx.fneg(z);
                uz = ctx.fneg(uz);
            }
            if (ctx.branch(kSiteHiZ, ctx.fgt(z, vzmax))) {
                z = ctx.fsub(ctx.fadd(vzmax, vzmax), z);
                uz = ctx.fneg(uz);
            }
            co_await ctx.storeIdx(pz_, vp, z);

            // Bin into the space array.
            Val cx = ctx.imax(ctx.imin(ctx.toInt(x), vcx_max), zero);
            Val cy = ctx.imax(ctx.imin(ctx.toInt(y), vcy_max), zero);
            Val cz = ctx.imax(ctx.imin(ctx.toInt(z), vcz_max), zero);
            Val cidx = ctx.add(ctx.add(ctx.mul(cz, vplane),
                                       ctx.mul(cy, vrow)), cx);

            // Kinetic energy tally.
            Val e = ctx.fadd(ctx.fadd(ctx.fmul(ux, ux),
                                      ctx.fmul(uy, uy)),
                             ctx.fmul(uz, uz));
            local_energy = ctx.fadd(local_energy, e);

            // Probabilistic collision candidacy; only candidates
            // touch the shared space array (the original similarly
            // confines most space-array traffic to the collision
            // stage of a particle's step).
            Val h = ctx.bxor(ctx.mul(vp, vhash_a),
                             ctx.mul(ctx.add(vstep, one), vhash_b));
            Val sel = ctx.band(ctx.shr(h, ctx.imm(13)), ctx.imm(7));
            if (ctx.branch(kSiteCollide, ctx.eq(sel, zero))) {
                // Unsynchronized cell population update — the
                // original MP3D updates the space array without
                // locks.
                Val cnt = co_await ctx.loadIdx(cell_count_, cidx);
                co_await ctx.storeIdx(cell_count_, cidx,
                                      ctx.add(cnt, one));

                // Chase the cell's current collision partner: the
                // address of the partner's velocity depends on the
                // partner-index load (a dependent-miss chain).
                Val partner =
                    co_await ctx.loadIdx(cell_partner_, cidx);
                Val pvx = co_await ctx.loadIdx(vx_, partner);
                Val pvy = co_await ctx.loadIdx(vy_, partner);
                Val pvz = co_await ctx.loadIdx(vz_, partner);

                // Crowded cells cost extra work (relative-speed
                // profile); the occupancy test is data dependent.
                if (ctx.branch(kSiteDense, ctx.gt(cnt, zero))) {
                    Val dx = ctx.fsub(ux, pvx);
                    Val dy = ctx.fsub(uy, pvy);
                    Val dz = ctx.fsub(uz, pvz);
                    Val rel = ctx.fadd(ctx.fadd(ctx.fmul(dx, dx),
                                                ctx.fmul(dy, dy)),
                                       ctx.fmul(dz, dz));
                    local_energy = ctx.fadd(local_energy, rel);
                }

                // Momentum-conserving exchange: both take the mean.
                Val mx = ctx.fmul(half, ctx.fadd(ux, pvx));
                Val my = ctx.fmul(half, ctx.fadd(uy, pvy));
                Val mz = ctx.fmul(half, ctx.fadd(uz, pvz));
                co_await ctx.storeIdx(vx_, vp, mx);
                co_await ctx.storeIdx(vy_, vp, my);
                co_await ctx.storeIdx(vz_, vp, mz);
                co_await ctx.storeIdx(vx_, partner, mx);
                co_await ctx.storeIdx(vy_, partner, my);
                co_await ctx.storeIdx(vz_, partner, mz);
                co_await ctx.storeIdx(cell_partner_, cidx, vp);
                local_collisions = ctx.add(local_collisions, one);
                local_momentum = ctx.fadd(local_momentum, mx);
            } else {
                co_await ctx.storeIdx(vx_, vp, ux);
                co_await ctx.storeIdx(vy_, vp, uy);
                co_await ctx.storeIdx(vz_, vp, uz);
            }

            vp = ctx.add(vp, one);
        }
        co_await ctx.barrier(bar_);

        // ---- Phase 3: fold local accumulators into globals --------
        co_await ctx.lock(count_lock_);
        {
            Val g = co_await ctx.loadIdx(collide_count_, zero);
            co_await ctx.storeIdx(collide_count_, zero,
                                  ctx.add(g, local_collisions));
        }
        co_await ctx.unlock(count_lock_);

        co_await ctx.lock(momentum_lock_);
        {
            Val g = co_await ctx.loadIdx(momentum_, zero);
            co_await ctx.storeIdx(momentum_, zero,
                                  ctx.fadd(g, local_momentum));
            Val ge = co_await ctx.loadIdx(momentum_, one);
            co_await ctx.storeIdx(momentum_, one,
                                  ctx.fadd(ge, local_energy));
        }
        co_await ctx.unlock(momentum_lock_);
        co_await ctx.barrier(bar_);

        vstep = ctx.add(vstep, one);
    }

    co_await ctx.barrier(bar_);
}

bool
Mp3d::verify(const mp::Engine &) const
{
    const uint32_t n = config_.particles;

    // Exact invariant 1: the collision count is determined by the
    // hash alone (lock-protected accumulation, no races).
    int64_t expected_collisions = 0;
    for (uint32_t p = 0; p < n; ++p)
        for (uint32_t s = 0; s < config_.timesteps; ++s)
            if (nativeCollides(p, s))
                ++expected_collisions;
    if (collide_count_.get(0) != expected_collisions)
        return false;

    // Exact invariant 2: positions stay inside the domain.
    for (uint32_t p = 0; p < n; ++p) {
        double x = px_.get(p);
        double y = py_.get(p);
        double z = pz_.get(p);
        if (!(x >= 0.0 && x <= config_.cells_x))
            return false;
        if (!(y >= 0.0 && y <= config_.cells_y))
            return false;
        if (!(z >= 0.0 && z <= config_.cells_z))
            return false;
        if (!std::isfinite(vx_.get(p)) || !std::isfinite(vy_.get(p)) ||
            !std::isfinite(vz_.get(p))) {
            return false;
        }
    }

    // Invariant 3: the final step's (racy, hence possibly lossy) cell
    // census never exceeds that step's collision-candidate count and
    // catches most of it.
    int64_t last_step_candidates = 0;
    for (uint32_t p = 0; p < n; ++p)
        if (nativeCollides(p, config_.timesteps - 1))
            ++last_step_candidates;
    int64_t census = 0;
    for (uint32_t c = 0; c < numCells(); ++c) {
        int64_t count = cell_count_.get(c);
        if (count < 0)
            return false;
        census += count;
    }
    if (census > last_step_candidates)
        return false;
    if (census < last_step_candidates / 2)
        return false;

    return std::isfinite(momentum_.get(0)) &&
        std::isfinite(momentum_.get(1));
}

} // namespace dsmem::apps
