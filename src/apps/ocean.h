#ifndef DSMEM_APPS_OCEAN_H
#define DSMEM_APPS_OCEAN_H

#include <cstdint>
#include <vector>

#include "apps/app.h"
#include "mp/arena.h"

namespace dsmem::apps {

/** OCEAN problem size (the paper ran a 98x98 grid, ~25 grids). */
struct OceanConfig {
    uint32_t n = 98;          ///< Interior points (the paper's size).
    uint32_t grids = 25;      ///< Number of 2-D state/work arrays.
    uint32_t timesteps = 3;
    uint32_t stencil_passes = 5; ///< 5-point stencil phases per step.
    uint32_t scale_passes = 8;   ///< Scale-copy phases (write fresh grid).
    uint32_t clear_passes = 4;   ///< Work-array zeroing phases per step.
    uint32_t sor_sweeps = 2;     ///< Red-black SOR sweeps per timestep.
    uint64_t seed = 777;
};

/**
 * OCEAN — eddy/boundary-current simulation kernel (Section 3.3).
 *
 * The original program solves spatial PDEs over ~25 statically
 * allocated 2-D double grids each timestep. We reproduce that
 * structure: every timestep applies barrier-separated 5-point stencil
 * phases across a rotating set of grids, followed by red-black SOR
 * sweeps. Rows are statically partitioned in contiguous strips, so
 * strip-boundary rows communicate between neighbors, and the
 * many-grid footprint exceeds the 64 KB cache as in the paper —
 * which is why OCEAN is the one application whose write misses
 * outnumber its read misses (Table 1) and why PC fails to hide its
 * write latency (Section 4.1.1).
 */
class Ocean : public Application
{
  public:
    explicit Ocean(const OceanConfig &config);

    std::string_view name() const override { return "OCEAN"; }
    void setup(mp::Engine &engine) override;
    mp::Task worker(mp::ThreadContext &ctx, uint32_t tid) override;
    bool verify(const mp::Engine &engine) const override;

    const OceanConfig &oceanConfig() const { return config_; }

  private:
    uint32_t stride() const { return config_.n + 2; }

    size_t flatIndex(uint32_t i, uint32_t j) const
    {
        return static_cast<size_t>(i) * stride() + j;
    }

    /** Native mirror of one stencil phase (for verify()). */
    static void nativeStencil(std::vector<double> &dst,
                              const std::vector<double> &src,
                              const std::vector<double> &aux, uint32_t n);

    /** Native mirror of one red-black SOR sweep. */
    static void nativeSorSweep(std::vector<double> &grid,
                               const std::vector<double> &rhs,
                               uint32_t n, uint32_t color);

    OceanConfig config_;
    std::vector<mp::ArenaArray<double>> grids_;
    mp::BarrierId bar_ = 0;
};

} // namespace dsmem::apps

#endif // DSMEM_APPS_OCEAN_H
