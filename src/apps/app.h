#ifndef DSMEM_APPS_APP_H
#define DSMEM_APPS_APP_H

#include <memory>
#include <string>
#include <string_view>

#include "mp/engine.h"
#include "mp/task.h"

namespace dsmem::apps {

/**
 * A parallel benchmark application (Section 3.3 of the paper).
 *
 * Lifecycle: setup() allocates and initializes shared data in the
 * engine's arena *without* emitting trace instructions (matching the
 * paper's focus on the parallel phase), creates synchronization
 * objects, and captures whatever per-run state the workers need; the
 * harness then spawns worker(tid) on every simulated processor and
 * runs the engine; verify() checks the computed result against an
 * independent native reimplementation, guarding the tracing DSL
 * against silent algorithmic corruption.
 */
class Application
{
  public:
    virtual ~Application() = default;

    virtual std::string_view name() const = 0;

    /** Allocate and initialize shared state (untimed). */
    virtual void setup(mp::Engine &engine) = 0;

    /** The parallel worker body for processor @p tid. */
    virtual mp::Task worker(mp::ThreadContext &ctx, uint32_t tid) = 0;

    /** Check results after the run; true when correct. */
    virtual bool verify(const mp::Engine &engine) const = 0;
};

/** setup() + spawn a worker per processor + run to completion. */
void runApplication(mp::Engine &engine, Application &app);

} // namespace dsmem::apps

#endif // DSMEM_APPS_APP_H
