#ifndef DSMEM_APPS_MP3D_H
#define DSMEM_APPS_MP3D_H

#include <cstdint>
#include <vector>

#include "apps/app.h"
#include "mp/arena.h"
#include "mp/sync.h"

namespace dsmem::apps {

/** MP3D problem size (paper: 10,000 particles, 64x8x8 cells, 5 steps). */
struct Mp3dConfig {
    uint32_t particles = 8192;
    uint32_t cells_x = 32;
    uint32_t cells_y = 8;
    uint32_t cells_z = 8;
    uint32_t timesteps = 5;
    uint64_t seed = 4242;
};

/**
 * MP3D — 3-D rarefied-flow particle simulator (Section 3.3).
 *
 * Each timestep moves every particle along its velocity vector
 * (reflecting off the domain boundaries), bins it into a cell of the
 * space array, and probabilistically collides it with the cell's
 * reservoir particle, exchanging momentum. Particles are statically
 * partitioned; the space array is shared, so cell accesses are the
 * communication misses that give MP3D the highest miss rates of the
 * five applications (Table 1). Synchronization is barriers between
 * phases plus a few global-accumulator locks per step (Table 2).
 *
 * The collision test uses an integer hash computed through the DSL,
 * so its data dependences and its (mostly not-taken, hence largely
 * predictable) branch appear in the trace.
 */
class Mp3d : public Application
{
  public:
    explicit Mp3d(const Mp3dConfig &config);

    std::string_view name() const override { return "MP3D"; }
    void setup(mp::Engine &engine) override;
    mp::Task worker(mp::ThreadContext &ctx, uint32_t tid) override;
    bool verify(const mp::Engine &engine) const override;

    const Mp3dConfig &mp3dConfig() const { return config_; }

  private:
    uint32_t numCells() const
    {
        return config_.cells_x * config_.cells_y * config_.cells_z;
    }

    Mp3dConfig config_;

    // Particle state (structure of arrays).
    mp::ArenaArray<double> px_, py_, pz_;
    mp::ArenaArray<double> vx_, vy_, vz_;

    // Space array: per-cell population count and the index of the
    // cell's current collision-partner particle. Finding the partner
    // is a two-level chase (cell -> partner index -> partner
    // velocity), the dependent-miss chain Section 4.1.3 observes in
    // MP3D.
    mp::ArenaArray<int64_t> cell_count_;
    mp::ArenaArray<int64_t> cell_partner_;

    // Global accumulators (lock protected).
    mp::ArenaArray<int64_t> collide_count_;
    mp::ArenaArray<double> momentum_;

    mp::BarrierId bar_ = 0;
    mp::LockId count_lock_ = 0;
    mp::LockId momentum_lock_ = 0;

    std::vector<double> init_state_; ///< Snapshot for verify().
};

} // namespace dsmem::apps

#endif // DSMEM_APPS_MP3D_H
