#include "svc/catalog.h"

#include "sim/app_registry.h"
#include "sim/experiment.h"

namespace dsmem::svc {

const std::vector<CatalogEntry> &
campaignCatalog()
{
    static const std::vector<CatalogEntry> kCatalog = {
        {"figure3", "bench_figure3",
         "Figure 3 breakdown sweep: all apps x BASE/SSBR/SS/DS under "
         "SC/PC/RC (matches bench_figure3)"},
        {"smoke", "svc_smoke",
         "Two small units x four specs; the cheap campaign the chaos "
         "driver and tests shard"},
    };
    return kCatalog;
}

std::string
benchNameFor(const std::string &name)
{
    for (const CatalogEntry &e : campaignCatalog())
        if (name == e.name)
            return e.bench;
    return "";
}

bool
declareCampaign(const std::string &name, bool small,
                runner::Campaign &campaign, std::string *err)
{
    if (name == "figure3") {
        // Mirror bench_figure3.cc exactly: declaration order is part
        // of the journal signature and the JSON record order.
        std::vector<sim::ModelSpec> specs = sim::figure3Columns();
        for (sim::AppId id : sim::kAllApps)
            campaign.add(id, specs, memsys::MemoryConfig{}, small);
        return true;
    }
    if (name == "smoke") {
        std::vector<sim::ModelSpec> specs = {
            sim::ModelSpec::base(),
            sim::ModelSpec::ss(core::ConsistencyModel::RC),
            sim::ModelSpec::ds(core::ConsistencyModel::RC, 16),
            sim::ModelSpec::ds(core::ConsistencyModel::RC, 64),
        };
        campaign.add(sim::AppId::MP3D, specs, memsys::MemoryConfig{},
                     small);
        campaign.add(sim::AppId::LU, specs, memsys::MemoryConfig{},
                     small);
        return true;
    }
    if (err)
        *err = "unknown campaign '" + name +
               "' (see `dsmem_svc list` for the catalog)";
    return false;
}

} // namespace dsmem::svc
