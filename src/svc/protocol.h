#ifndef DSMEM_SVC_PROTOCOL_H
#define DSMEM_SVC_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "memsys/config.h"
#include "sim/experiment.h"
#include "sim/sampling.h"

namespace dsmem::svc {

/**
 * The campaign service's wire protocol: length-prefixed, checksummed
 * frames over a local (AF_UNIX) stream socket.
 *
 * Frame layout, all fields little-endian:
 *
 *   u32 magic 'DSVC' | u32 type | u32 len | payload[len] | u64 fnv
 *
 * where fnv is the FNV-1a hash of the payload bytes. The magic pins
 * stream alignment (a frame can only be parsed where a frame starts),
 * the length prefix bounds the read, and the trailing checksum
 * rejects a torn or corrupted payload before anything is decoded —
 * the same belt-and-braces the DSMB bundle container uses. Any
 * violation is a *protocol error*: the connection is considered
 * poisoned and dropped (at-least-once dispatch makes the drop safe —
 * the dead worker's cells simply re-dispatch).
 *
 * Payloads are encoded with the WireOut/WireIn helpers below:
 * fixed-width integers, bit-cast doubles (results must cross the
 * wire bit-identically — text formatting would round), and
 * length-prefixed strings.
 *
 * Failpoint sites: every send/receive boundary evaluates the site
 * named by its caller (svc.worker.send, svc.coord.recv, ...), so the
 * chaos driver can kill -9 either side of the connection at any
 * protocol boundary deterministically (mode `kill`), or inject
 * transient faults (mode `throw` surfaces as a connection error).
 */
inline constexpr uint32_t kProtocolMagic = 0x43565344; // "DSVC"
inline constexpr uint32_t kProtocolVersion = 1;
/** Sanity cap on one frame's payload (declarations are ~KBs). */
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

enum class MsgType : uint32_t {
    HELLO = 1,     ///< worker -> coordinator: slot id + pid
    WELCOME,       ///< coordinator -> worker: full campaign declaration
    ASSIGN,        ///< coordinator -> worker: run one cell
    RESULT,        ///< worker -> coordinator: cell outcome
    HEARTBEAT,     ///< worker -> coordinator: lease renewal
    SHUTDOWN,      ///< coordinator -> worker: drain and exit
    CAMPAIGN_REQ,  ///< client -> server: queue one campaign
    CAMPAIGN_DONE, ///< server -> client: campaign finished
};

struct Frame {
    MsgType type = MsgType::HELLO;
    std::string payload;
};

/** Little-endian payload encoder. */
struct WireOut {
    std::string buf;

    void u8(uint8_t v) { buf.push_back(static_cast<char>(v)); }
    void u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void f64(double v); ///< Bit-cast; exact round trip.
    void str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        buf.append(s);
    }
};

/** Little-endian payload decoder; sticky ok flag instead of throws. */
struct WireIn {
    const std::string &buf;
    size_t pos = 0;
    bool ok = true;

    explicit WireIn(const std::string &b) : buf(b) {}

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    double f64();
    std::string str();
    /** Whole payload consumed cleanly (trailing garbage is an error). */
    bool done() const { return ok && pos == buf.size(); }
};

/**
 * Send one frame on a (blocking) socket. @p site names the failpoint
 * boundary ("svc.worker.send" / "svc.coord.send"). Returns false
 * with a diagnostic on any failure; the connection should then be
 * treated as dead.
 */
bool sendFrame(int fd, const char *site, MsgType type,
               const std::string &payload, std::string *err);

/**
 * Blocking receive of exactly one frame (the worker side). Returns
 * false on EOF, I/O error, or protocol violation.
 */
bool recvFrame(int fd, const char *site, Frame &out, std::string *err);

/**
 * Incremental frame parser for the coordinator's non-blocking reads:
 * feed() raw bytes, then next() until it stops returning 1.
 */
class FrameReader
{
  public:
    void feed(const char *data, size_t n) { buf_.append(data, n); }

    /** 1 = frame extracted, 0 = need more bytes, -1 = protocol error. */
    int next(Frame &out, std::string *err);

  private:
    std::string buf_;
};

/**
 * Drain everything currently readable from @p fd into @p rx without
 * blocking. @p site is the receive failpoint boundary. Returns 1 on
 * success, 0 on orderly EOF, -1 on error.
 */
int drainSocket(int fd, const char *site, FrameReader &rx,
                std::string *err);

// ---- message payloads ----------------------------------------------

struct HelloMsg {
    uint32_t worker = 0;
    uint64_t pid = 0;
    uint32_t version = kProtocolVersion;
};

/** One campaign unit, as shipped to workers. */
struct UnitDecl {
    uint32_t app = 0; ///< static_cast of sim::AppId
    memsys::MemoryConfig mem;
    uint8_t small = 0;
    std::vector<sim::ModelSpec> specs;
};

/** The full worker configuration: declaration set + policies. */
struct WelcomeMsg {
    std::string bench;
    std::string trace_dir;
    uint64_t signature = 0;
    uint32_t heartbeat_ms = 500;
    uint32_t max_attempts = 3;
    uint32_t backoff_base_ms = 10;
    uint32_t backoff_cap_ms = 1000;
    /** static_cast of sim::StreamExec: the trace-residency policy the
     *  worker's TraceStore applies (chunk-compressed streaming vs flat
     *  view — see sim/stream_exec.h). */
    uint8_t stream_exec = 0;
    sim::SamplingPlan plan;
    std::vector<UnitDecl> units;
};

struct AssignMsg {
    uint32_t unit = 0;
    uint32_t spec = 0;
    uint64_t seq = 0; ///< Dispatch sequence number (audit/debug).
};

struct ResultMsg {
    uint32_t unit = 0;
    uint32_t spec = 0;
    uint64_t seq = 0;
    uint8_t ok = 1;    ///< 0: the cell failed permanently worker-side.
    std::string error; ///< Failure text when !ok.
    core::RunResult result;
    sim::SampleSummary sampling;
    double wall_ms = 0.0;
    /** Trace provenance piggyback (coordinator keeps the first). */
    uint8_t has_trace = 0;
    std::string trace_origin;
    uint64_t trace_instructions = 0;
    double trace_wall_ms = 0.0;
    double gen_ms = 0.0;
    double load_ms = 0.0;
    /** Worker-process memory accounting (the streaming executor's
     *  acceptance metric): getrusage peak RSS at result time, and the
     *  bytes the cell's trace held resident (compressed chunks when
     *  streamed, the full SoA footprint when flat). */
    uint64_t peak_rss_bytes = 0;
    uint64_t view_bytes_resident = 0;
};

struct HeartbeatMsg {
    uint32_t worker = 0;
    uint64_t beats = 0;
};

struct CampaignReqMsg {
    std::string name; ///< Catalog name ("figure3", "smoke", ...).
    uint8_t small = 1;
    uint32_t workers = 0; ///< 0 = server default.
    std::string json_path;
    uint8_t stable_json = 0;
    std::string journal_path;
    uint8_t resume = 0;
    std::string trace_dir;
};

struct CampaignDoneMsg {
    int32_t exit_code = 0;
    std::string summary; ///< failureSummary() ("" when clean).
};

std::string encodeHello(const HelloMsg &m);
bool decodeHello(const std::string &p, HelloMsg &m);
std::string encodeWelcome(const WelcomeMsg &m);
bool decodeWelcome(const std::string &p, WelcomeMsg &m);
std::string encodeAssign(const AssignMsg &m);
bool decodeAssign(const std::string &p, AssignMsg &m);
std::string encodeResult(const ResultMsg &m);
bool decodeResult(const std::string &p, ResultMsg &m);
std::string encodeHeartbeat(const HeartbeatMsg &m);
bool decodeHeartbeat(const std::string &p, HeartbeatMsg &m);
std::string encodeCampaignReq(const CampaignReqMsg &m);
bool decodeCampaignReq(const std::string &p, CampaignReqMsg &m);
std::string encodeCampaignDone(const CampaignDoneMsg &m);
bool decodeCampaignDone(const std::string &p, CampaignDoneMsg &m);

} // namespace dsmem::svc

#endif // DSMEM_SVC_PROTOCOL_H
