/**
 * @file
 * `dsmem_svc` — the sharded campaign service CLI.
 *
 *   dsmem_svc run --campaign NAME [options]   coordinator + workers
 *   dsmem_svc worker --socket P --id K        one worker (internal)
 *   dsmem_svc serve --socket P [options]      long-lived server
 *   dsmem_svc submit --socket P --campaign N  queue on a server
 *   dsmem_svc stop --socket P                 shut a server down
 *   dsmem_svc gc --trace-dir D [--age-days N] store GC, standalone
 *   dsmem_svc list                            campaign catalog
 *   dsmem_svc --list-failpoints               failpoint site catalog
 *
 * `run` forks N worker processes (re-exec of this binary with the
 * `worker` subcommand), shards the campaign's cells across them, and
 * completes with the same exit-code contract as the bench binaries:
 * 0 iff every declared row holds a result. With --stable-json the
 * JSON export is byte-identical to the same campaign run by its
 * bench binary with --jobs N --stable-json, for any worker count and
 * any kill schedule — the invariant tools/chaos_smoke.py enforces.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runner/campaign.h"
#include "svc/catalog.h"
#include "svc/coordinator.h"
#include "svc/server.h"
#include "svc/worker.h"
#include "util/failpoint.h"

using namespace dsmem;

namespace {

void
usage(FILE *out)
{
    std::fprintf(
        out,
        "usage: dsmem_svc <command> [options]\n"
        "\n"
        "commands:\n"
        "  run      --campaign NAME [--small|--full] [--workers N]\n"
        "           [--trace-dir D] [--json F] [--stable-json]\n"
        "           [--journal F] [--resume] [--lease-ms N]\n"
        "           [--heartbeat-ms N] [--respawn N] [--socket P]\n"
        "           [--worker-exe E] [--stats-json F] [--store-gc]\n"
        "           [--store-gc-age-days N] [--quiet]\n"
        "           [--stream-exec auto|on|off]\n"
        "  worker   --socket P --id K   (spawned by run; internal)\n"
        "  serve    --socket P [--workers N] [--trace-dir D]\n"
        "           [--lease-ms N] [--heartbeat-ms N] [--respawn N]\n"
        "  submit   --socket P --campaign NAME [--small|--full]\n"
        "           [--workers N] [--json F] [--stable-json]\n"
        "           [--journal F] [--resume] [--trace-dir D]\n"
        "  stop     --socket P\n"
        "  gc       --trace-dir D [--age-days N]\n"
        "  list     print the campaign catalog\n"
        "  --list-failpoints   print every failpoint site and exit\n");
}

/** `--flag value` helper: true when argv[i] is @p flag (advances i). */
bool
flagValue(int argc, char **argv, int &i, const char *flag,
          std::string &out)
{
    if (std::strcmp(argv[i], flag) != 0)
        return false;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "dsmem_svc: %s needs a value\n", flag);
        std::exit(2);
    }
    out = argv[++i];
    return true;
}

unsigned
parseUnsigned(const std::string &v, const char *flag)
{
    char *end = nullptr;
    unsigned long n = std::strtoul(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0') {
        std::fprintf(stderr, "dsmem_svc: bad %s value '%s'\n", flag,
                     v.c_str());
        std::exit(2);
    }
    return static_cast<unsigned>(n);
}

int
cmdRun(int argc, char **argv)
{
    std::string campaign_name, json_path, stats_json, value;
    runner::RunnerOptions ro;
    svc::ServiceOptions so;
    bool small = true;
    for (int i = 0; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--campaign", value))
            campaign_name = value;
        else if (std::strcmp(argv[i], "--small") == 0)
            small = true;
        else if (std::strcmp(argv[i], "--full") == 0)
            small = false;
        else if (flagValue(argc, argv, i, "--workers", value))
            so.workers = parseUnsigned(value, "--workers");
        else if (flagValue(argc, argv, i, "--trace-dir", value))
            ro.trace_dir = value;
        else if (flagValue(argc, argv, i, "--json", value))
            json_path = value;
        else if (std::strcmp(argv[i], "--stable-json") == 0)
            ro.stable_json = true;
        else if (flagValue(argc, argv, i, "--journal", value))
            ro.journal_path = value;
        else if (std::strcmp(argv[i], "--resume") == 0)
            ro.resume = true;
        else if (flagValue(argc, argv, i, "--lease-ms", value))
            so.lease_ms = parseUnsigned(value, "--lease-ms");
        else if (flagValue(argc, argv, i, "--heartbeat-ms", value))
            so.heartbeat_ms = parseUnsigned(value, "--heartbeat-ms");
        else if (flagValue(argc, argv, i, "--respawn", value))
            so.respawn_per_slot = parseUnsigned(value, "--respawn");
        else if (flagValue(argc, argv, i, "--socket", value))
            so.socket_path = value;
        else if (flagValue(argc, argv, i, "--worker-exe", value))
            so.worker_exe = value;
        else if (flagValue(argc, argv, i, "--stats-json", value))
            stats_json = value;
        else if (flagValue(argc, argv, i, "--stream-exec", value)) {
            if (!sim::parseStreamExec(value, &ro.stream_exec)) {
                std::fprintf(stderr,
                             "dsmem_svc run: --stream-exec wants "
                             "auto|on|off, got '%s'\n",
                             value.c_str());
                return 2;
            }
        } else if (std::strcmp(argv[i], "--store-gc") == 0)
            ro.store_gc = true;
        else if (flagValue(argc, argv, i, "--store-gc-age-days",
                           value))
            ro.store_gc_age_s =
                uint64_t(parseUnsigned(value, "--store-gc-age-days")) *
                24 * 3600;
        else if (std::strcmp(argv[i], "--quiet") == 0)
            so.print_workers = false;
        else {
            std::fprintf(stderr, "dsmem_svc run: unknown flag %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (campaign_name.empty()) {
        std::fprintf(stderr, "dsmem_svc run: --campaign required\n");
        return 2;
    }
    std::string bench = svc::benchNameFor(campaign_name);
    std::string err;
    if (bench.empty()) {
        std::fprintf(stderr, "dsmem_svc run: unknown campaign '%s'\n",
                     campaign_name.c_str());
        return 2;
    }
    runner::Campaign campaign(bench, ro);
    if (!svc::declareCampaign(campaign_name, small, campaign, &err)) {
        std::fprintf(stderr, "dsmem_svc run: %s\n", err.c_str());
        return 2;
    }
    svc::Coordinator coordinator(campaign, so);
    int code = coordinator.run();
    std::string summary = campaign.failureSummary();
    if (!summary.empty())
        std::fprintf(stderr, "%s", summary.c_str());
    if (!campaign.writeJson(json_path)) {
        std::fprintf(stderr, "dsmem_svc run: cannot write %s\n",
                     json_path.c_str());
        code = code ? code : 1;
    }
    if (!stats_json.empty()) {
        FILE *f = std::fopen(stats_json.c_str(), "w");
        if (f) {
            std::fputs(coordinator.statsJson().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "dsmem_svc run: cannot write %s\n",
                         stats_json.c_str());
        }
    }
    return code;
}

int
cmdWorker(int argc, char **argv)
{
    svc::WorkerOptions wo;
    std::string value;
    for (int i = 0; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--socket", value))
            wo.socket_path = value;
        else if (flagValue(argc, argv, i, "--id", value))
            wo.id = parseUnsigned(value, "--id");
        else {
            std::fprintf(stderr,
                         "dsmem_svc worker: unknown flag %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (wo.socket_path.empty()) {
        std::fprintf(stderr,
                     "dsmem_svc worker: --socket required\n");
        return 2;
    }
    return svc::workerMain(wo);
}

int
cmdServe(int argc, char **argv)
{
    svc::ServerOptions so;
    std::string value;
    for (int i = 0; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--socket", value))
            so.socket_path = value;
        else if (flagValue(argc, argv, i, "--workers", value))
            so.svc.workers = parseUnsigned(value, "--workers");
        else if (flagValue(argc, argv, i, "--trace-dir", value))
            so.trace_dir = value;
        else if (flagValue(argc, argv, i, "--lease-ms", value))
            so.svc.lease_ms = parseUnsigned(value, "--lease-ms");
        else if (flagValue(argc, argv, i, "--heartbeat-ms", value))
            so.svc.heartbeat_ms =
                parseUnsigned(value, "--heartbeat-ms");
        else if (flagValue(argc, argv, i, "--respawn", value))
            so.svc.respawn_per_slot =
                parseUnsigned(value, "--respawn");
        else {
            std::fprintf(stderr,
                         "dsmem_svc serve: unknown flag %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (so.socket_path.empty()) {
        std::fprintf(stderr, "dsmem_svc serve: --socket required\n");
        return 2;
    }
    return svc::serveMain(so);
}

int
cmdSubmit(int argc, char **argv)
{
    std::string socket_path, value;
    svc::CampaignReqMsg req;
    for (int i = 0; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--socket", value))
            socket_path = value;
        else if (flagValue(argc, argv, i, "--campaign", value))
            req.name = value;
        else if (std::strcmp(argv[i], "--small") == 0)
            req.small = 1;
        else if (std::strcmp(argv[i], "--full") == 0)
            req.small = 0;
        else if (flagValue(argc, argv, i, "--workers", value))
            req.workers = parseUnsigned(value, "--workers");
        else if (flagValue(argc, argv, i, "--json", value))
            req.json_path = value;
        else if (std::strcmp(argv[i], "--stable-json") == 0)
            req.stable_json = 1;
        else if (flagValue(argc, argv, i, "--journal", value))
            req.journal_path = value;
        else if (std::strcmp(argv[i], "--resume") == 0)
            req.resume = 1;
        else if (flagValue(argc, argv, i, "--trace-dir", value))
            req.trace_dir = value;
        else {
            std::fprintf(stderr,
                         "dsmem_svc submit: unknown flag %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (socket_path.empty() || req.name.empty()) {
        std::fprintf(
            stderr,
            "dsmem_svc submit: --socket and --campaign required\n");
        return 2;
    }
    return svc::submitMain(socket_path, req);
}

int
cmdStop(int argc, char **argv)
{
    std::string socket_path, value;
    for (int i = 0; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--socket", value))
            socket_path = value;
        else {
            std::fprintf(stderr, "dsmem_svc stop: unknown flag %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (socket_path.empty()) {
        std::fprintf(stderr, "dsmem_svc stop: --socket required\n");
        return 2;
    }
    svc::CampaignReqMsg req;
    req.name = "__stop__";
    return svc::submitMain(socket_path, req);
}

int
cmdGc(int argc, char **argv)
{
    std::string trace_dir = ".dsmem-cache", value;
    runner::StoreGcOptions gco;
    for (int i = 0; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--trace-dir", value))
            trace_dir = value;
        else if (flagValue(argc, argv, i, "--age-days", value))
            gco.max_age_s =
                uint64_t(parseUnsigned(value, "--age-days")) * 24 *
                3600;
        else {
            std::fprintf(stderr, "dsmem_svc gc: unknown flag %s\n",
                         argv[i]);
            return 2;
        }
    }
    runner::TraceStore store(trace_dir);
    runner::StoreGcStats st = store.gc(gco);
    std::printf("gc %s: scanned %llu, removed %llu corrupt + %llu "
                "stale + %llu tmp, kept %llu, errors %llu\n",
                trace_dir.c_str(),
                static_cast<unsigned long long>(st.scanned),
                static_cast<unsigned long long>(st.removed_corrupt),
                static_cast<unsigned long long>(st.removed_stale),
                static_cast<unsigned long long>(st.removed_tmp),
                static_cast<unsigned long long>(st.kept),
                static_cast<unsigned long long>(st.errors));
    return st.errors ? 1 : 0;
}

int
cmdList()
{
    for (const svc::CatalogEntry &e : svc::campaignCatalog())
        std::printf("%-10s %s\n", e.name, e.what);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "--list-failpoints") {
        util::printFailpointSites(stdout);
        return 0;
    }
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        usage(stdout);
        return 0;
    }
    int rest = argc - 2;
    char **rest_argv = argv + 2;
    if (cmd == "run")
        return cmdRun(rest, rest_argv);
    if (cmd == "worker")
        return cmdWorker(rest, rest_argv);
    if (cmd == "serve")
        return cmdServe(rest, rest_argv);
    if (cmd == "submit")
        return cmdSubmit(rest, rest_argv);
    if (cmd == "stop")
        return cmdStop(rest, rest_argv);
    if (cmd == "gc")
        return cmdGc(rest, rest_argv);
    if (cmd == "list")
        return cmdList();
    std::fprintf(stderr, "dsmem_svc: unknown command '%s'\n",
                 cmd.c_str());
    usage(stderr);
    return 2;
}
