#ifndef DSMEM_SVC_SERVER_H
#define DSMEM_SVC_SERVER_H

#include <string>

#include "svc/coordinator.h"
#include "svc/protocol.h"

namespace dsmem::svc {

struct ServerOptions {
    std::string socket_path; ///< Listen path for campaign requests.
    ServiceOptions svc;      ///< Pool defaults for queued campaigns.
    /** Default trace dir for requests that leave theirs "". */
    std::string trace_dir = ".dsmem-cache";
};

/**
 * Long-lived server mode (`dsmem_svc serve`): accept CAMPAIGN_REQ
 * connections on an AF_UNIX socket and run each request through a
 * sharded Coordinator, one at a time — the listen backlog is the
 * queue, so clients block in submit order. Each request gets a
 * CAMPAIGN_DONE reply carrying the exit code and failure summary.
 * A request named "__stop__" shuts the server down (exit 0).
 */
int serveMain(const ServerOptions &opts);

/**
 * Client side (`dsmem_svc submit` / `stop`): send @p req, wait for
 * CAMPAIGN_DONE, print the summary, and return the campaign's exit
 * code (2 on connection/protocol failure).
 */
int submitMain(const std::string &socket_path,
               const CampaignReqMsg &req);

} // namespace dsmem::svc

#endif // DSMEM_SVC_SERVER_H
