#include "svc/worker.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "runner/trace_store.h"
#include "sim/app_registry.h"
#include "sim/sampling.h"
#include "sim/trace_bundle.h"
#include "svc/protocol.h"
#include "util/byte_io.h"
#include "util/errors.h"
#include "util/failpoint.h"
#include "util/sysinfo.h"

namespace dsmem::svc {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * The campaign's deterministic capped-exponential backoff, replicated
 * bit-for-bit (same salt scheme) so a worker's retry schedule matches
 * what the in-process pool would have done for the same cell.
 */
void
backoffSleep(const std::string &salt, unsigned attempt,
             uint32_t base_ms, uint32_t cap_ms)
{
    uint64_t ms = base_ms;
    for (unsigned i = 1; i < attempt && ms < cap_ms; ++i)
        ms *= 2;
    ms = std::min<uint64_t>(ms, cap_ms);
    uint64_t h =
        util::fnv1aUpdate(util::kFnvOffset, salt.data(), salt.size());
    h = util::fnv1aUpdate(h, &attempt, sizeof attempt);
    ms += h % (base_ms > 0 ? base_ms : 1);
    if (ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

int
connectCoordinator(const std::string &path, std::string *err)
{
    try {
        util::failpoint("svc.connect");
    } catch (const std::exception &e) {
        *err = e.what();
        return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        *err = "socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // Retry briefly: the coordinator binds before spawning, but an
    // externally launched worker may race the listen().
    for (int attempt = 0; attempt < 100; ++attempt) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            *err = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        int e = errno;
        ::close(fd);
        if (e != ENOENT && e != ECONNREFUSED) {
            *err = std::string("connect: ") + std::strerror(e);
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    *err = "connect: coordinator never came up at " + path;
    return -1;
}

/** All state one connected worker needs across cells. */
struct WorkerState {
    WelcomeMsg cfg;
    std::unique_ptr<runner::TraceStore> store;
    std::unique_ptr<sim::TraceCache> cache;
    /** Live points per unit (one trace key per unit). */
    std::map<uint32_t, std::shared_ptr<const sim::LivePointSet>> lps;
    /** Units whose trace provenance was already reported. */
    std::map<uint32_t, bool> trace_sent;
};

/**
 * Live points for @p unit's trace: the store's .dslp cache when it
 * matches this trace's content, else one functional-warming pass,
 * persisted for the next user. Same content gates as the campaign's
 * resolveLivePoints, so every process derives identical points.
 */
std::shared_ptr<const sim::LivePointSet>
resolveLivePoints(WorkerState &st, uint32_t unit,
                  const trace::TraceView &view)
{
    auto it = st.lps.find(unit);
    if (it != st.lps.end())
        return it->second;
    const UnitDecl &u = st.cfg.units[unit];
    const sim::AppId app = static_cast<sim::AppId>(u.app);
    std::shared_ptr<const sim::LivePointSet> lp;
    if (auto cached = st.store->loadLivePoints(app, u.mem, u.small != 0,
                                               st.cfg.plan)) {
        if (cached->instructions == view.size() &&
            cached->offset ==
                st.cfg.plan.offsetFor(view.name(), view.size()))
            lp = std::make_shared<const sim::LivePointSet>(
                std::move(*cached));
    }
    if (!lp) {
        auto fresh = std::make_shared<sim::LivePointSet>(
            sim::computeLivePoints(view, st.cfg.plan));
        st.store->storeLivePoints(app, u.mem, u.small != 0,
                                  st.cfg.plan, *fresh);
        lp = fresh;
    }
    st.lps.emplace(unit, lp);
    return lp;
}

/** Execute one assigned cell; never throws. */
ResultMsg
runCell(WorkerState &st, const AssignMsg &a)
{
    ResultMsg out;
    out.unit = a.unit;
    out.spec = a.spec;
    out.seq = a.seq;
    if (a.unit >= st.cfg.units.size() ||
        a.spec >= st.cfg.units[a.unit].specs.size()) {
        out.ok = 0;
        out.error = "assign out of range";
        return out;
    }
    const UnitDecl &u = st.cfg.units[a.unit];
    const sim::AppId app = static_cast<sim::AppId>(u.app);
    const sim::ModelSpec &spec = u.specs[a.spec];

    // Phase 1: trace through the shared on-disk store. Transient
    // faults retry with the campaign's backoff; anything else is a
    // permanent cell failure the coordinator records (not re-led).
    const sim::ViewBundle *vb = nullptr;
    std::shared_ptr<const sim::LivePointSet> lp;
    const std::string salt1 =
        "phase1:" + std::string(sim::appName(app));
    for (unsigned attempt = 1;; ++attempt) {
        try {
            sim::TraceOrigin origin;
            sim::TraceTiming timing;
            auto start = std::chrono::steady_clock::now();
            const sim::ViewBundle &bundle = st.cache->getView(
                app, u.mem, u.small != 0, &origin, &timing);
            if (st.cfg.plan.enabled() &&
                spec.kind == sim::ModelSpec::Kind::DS)
                lp = resolveLivePoints(st, a.unit,
                                       *bundle.flatView());
            double wall = elapsedMs(start);
            vb = &bundle;
            if (!st.trace_sent[a.unit]) {
                st.trace_sent[a.unit] = true;
                out.has_trace = 1;
                out.trace_origin =
                    std::string(sim::traceOriginName(origin));
                out.trace_instructions = bundle.stats.instructions;
                out.trace_wall_ms = wall;
                out.gen_ms = timing.gen_ms;
                out.load_ms = timing.load_ms;
            }
            break;
        } catch (const util::IoError &e) {
            if (attempt < st.cfg.max_attempts) {
                backoffSleep(salt1, attempt, st.cfg.backoff_base_ms,
                             st.cfg.backoff_cap_ms);
                continue;
            }
            out.ok = 0;
            out.error = std::string("phase1: ") + e.what();
            return out;
        } catch (const std::exception &e) {
            out.ok = 0;
            out.error = std::string("phase1: ") + e.what();
            return out;
        }
    }

    // Phase 2: one singleton group, identical to the in-process
    // pool's execution of the same cell (deterministic results).
    thread_local core::SimContext sim_ctx;
    sim::ExecGroup group;
    group.rows.push_back(a.spec);
    const std::string salt2 = "phase2:" +
                              std::string(sim::appName(app)) + ":" +
                              spec.label();
    const bool sampled = st.cfg.plan.enabled() && lp != nullptr;
    for (unsigned attempt = 1;; ++attempt) {
        auto t0 = std::chrono::steady_clock::now();
        try {
            util::failpoint("campaign.phase2");
            if (sampled) {
                std::vector<sim::SampledCell> cells =
                    sim::runGroupSampled(*vb->flatView(), u.specs,
                                         group, st.cfg.plan, *lp,
                                         sim_ctx);
                out.result = cells.front().result;
                out.sampling = cells.front().sampling;
            } else {
                out.result =
                    sim::runGroup(*vb, u.specs, group, sim_ctx)
                        .front();
            }
            out.wall_ms = elapsedMs(t0);
            out.peak_rss_bytes = util::peakRssBytes();
            out.view_bytes_resident = vb->traceBytesResident();
            return out;
        } catch (const util::IoError &e) {
            if (attempt < st.cfg.max_attempts) {
                backoffSleep(salt2, attempt, st.cfg.backoff_base_ms,
                             st.cfg.backoff_cap_ms);
                continue;
            }
            out.ok = 0;
            out.error = std::string("phase2: ") + e.what();
            return out;
        } catch (const std::exception &e) {
            out.ok = 0;
            out.error = std::string("phase2: ") + e.what();
            return out;
        }
    }
}

} // namespace

int
workerMain(const WorkerOptions &opts)
{
    std::signal(SIGPIPE, SIG_IGN);

    std::string err;
    int fd = connectCoordinator(opts.socket_path, &err);
    if (fd < 0) {
        std::fprintf(stderr, "dsmem_svc worker %u: %s\n", opts.id,
                     err.c_str());
        return 1;
    }

    // One mutex serializes the main loop's RESULTs with the
    // heartbeat thread's beats; frames never interleave.
    std::mutex send_mu;
    auto send = [&](MsgType type, const std::string &payload,
                    std::string *e) {
        std::lock_guard<std::mutex> lock(send_mu);
        return sendFrame(fd, "svc.worker.send", type, payload, e);
    };

    HelloMsg hello;
    hello.worker = opts.id;
    hello.pid = static_cast<uint64_t>(::getpid());
    if (!send(MsgType::HELLO, encodeHello(hello), &err)) {
        std::fprintf(stderr, "dsmem_svc worker %u: hello: %s\n",
                     opts.id, err.c_str());
        ::close(fd);
        return 1;
    }

    Frame frame;
    if (!recvFrame(fd, "svc.worker.recv", frame, &err) ||
        frame.type != MsgType::WELCOME) {
        std::fprintf(stderr, "dsmem_svc worker %u: welcome: %s\n",
                     opts.id, err.c_str());
        ::close(fd);
        return 1;
    }
    WorkerState st;
    if (!decodeWelcome(frame.payload, st.cfg)) {
        std::fprintf(stderr,
                     "dsmem_svc worker %u: malformed welcome\n",
                     opts.id);
        ::close(fd);
        return 1;
    }
    st.store =
        std::make_unique<runner::TraceStore>(st.cfg.trace_dir);
    st.store->setStreamExec(
        static_cast<sim::StreamExec>(st.cfg.stream_exec));
    st.cache = std::make_unique<sim::TraceCache>(
        st.store->enabled() ? st.store.get() : nullptr);

    // Heartbeat thread: renews the coordinator's lease while a long
    // phase-1 generation or phase-2 run keeps the main loop busy.
    std::atomic<bool> stop{false};
    std::mutex hb_mu;
    std::condition_variable hb_cv;
    std::thread heartbeat([&] {
        uint64_t beats = 0;
        const auto period =
            std::chrono::milliseconds(std::max<uint32_t>(
                st.cfg.heartbeat_ms, 1));
        std::unique_lock<std::mutex> lock(hb_mu);
        while (!stop.load()) {
            if (hb_cv.wait_for(lock, period,
                               [&] { return stop.load(); }))
                break;
            HeartbeatMsg hb{opts.id, ++beats};
            std::string ignored;
            if (!send(MsgType::HEARTBEAT, encodeHeartbeat(hb),
                      &ignored))
                break; // Coordinator gone; main loop will see EOF.
        }
    });
    auto joinHeartbeat = [&] {
        {
            std::lock_guard<std::mutex> lock(hb_mu);
            stop.store(true);
        }
        hb_cv.notify_all();
        heartbeat.join();
    };

    int code = 1;
    for (;;) {
        if (!recvFrame(fd, "svc.worker.recv", frame, &err)) {
            std::fprintf(stderr, "dsmem_svc worker %u: %s\n", opts.id,
                         err.c_str());
            break;
        }
        if (frame.type == MsgType::SHUTDOWN) {
            code = 0;
            break;
        }
        if (frame.type != MsgType::ASSIGN)
            continue; // Unknown frame types are ignored, not fatal.
        AssignMsg assign;
        if (!decodeAssign(frame.payload, assign)) {
            std::fprintf(stderr,
                         "dsmem_svc worker %u: malformed assign\n",
                         opts.id);
            break;
        }
        ResultMsg result = runCell(st, assign);
        if (!send(MsgType::RESULT, encodeResult(result), &err)) {
            std::fprintf(stderr, "dsmem_svc worker %u: result: %s\n",
                         opts.id, err.c_str());
            break;
        }
    }

    joinHeartbeat();
    ::close(fd);
    return code;
}

} // namespace dsmem::svc
