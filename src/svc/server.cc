#include "svc/server.h"

#include <csignal>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "svc/catalog.h"
#include "util/failpoint.h"

namespace dsmem::svc {

namespace {

int
bindListen(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        *err = "socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        *err = std::string("bind/listen: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTo(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        *err = "socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        *err = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Run one queued campaign request; fills the reply. */
CampaignDoneMsg
runRequest(const ServerOptions &opts, const CampaignReqMsg &req)
{
    CampaignDoneMsg done;
    std::string bench = benchNameFor(req.name);
    if (bench.empty()) {
        done.exit_code = 2;
        done.summary = "unknown campaign '" + req.name + "'";
        return done;
    }
    runner::RunnerOptions ro;
    ro.trace_dir =
        req.trace_dir.empty() ? opts.trace_dir : req.trace_dir;
    ro.journal_path = req.journal_path;
    ro.resume = req.resume != 0;
    ro.stable_json = req.stable_json != 0;
    runner::Campaign campaign(bench, ro);
    std::string err;
    if (!declareCampaign(req.name, req.small != 0, campaign, &err)) {
        done.exit_code = 2;
        done.summary = err;
        return done;
    }
    ServiceOptions so = opts.svc;
    if (req.workers > 0)
        so.workers = req.workers;
    Coordinator coordinator(campaign, so);
    done.exit_code = coordinator.run();
    if (!req.json_path.empty() &&
        !campaign.writeJson(req.json_path)) {
        done.exit_code = done.exit_code ? done.exit_code : 1;
        done.summary = "cannot write " + req.json_path;
        return done;
    }
    done.summary = campaign.failureSummary();
    return done;
}

} // namespace

int
serveMain(const ServerOptions &opts)
{
    std::signal(SIGPIPE, SIG_IGN);
    std::string err;
    int listen_fd = bindListen(opts.socket_path, &err);
    if (listen_fd < 0) {
        std::fprintf(stderr, "dsmem_svc serve: %s\n", err.c_str());
        return 1;
    }
    std::printf("svc: serving on %s\n", opts.socket_path.c_str());
    std::fflush(stdout);
    int code = 0;
    for (;;) {
        try {
            util::failpoint("svc.serve.accept");
        } catch (const std::exception &e) {
            std::fprintf(stderr, "dsmem_svc serve: accept: %s\n",
                         e.what());
            code = 1;
            break;
        }
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "dsmem_svc serve: accept: %s\n",
                         std::strerror(errno));
            code = 1;
            break;
        }
        Frame frame;
        CampaignReqMsg req;
        if (!recvFrame(fd, "svc.coord.recv", frame, &err) ||
            frame.type != MsgType::CAMPAIGN_REQ ||
            !decodeCampaignReq(frame.payload, req)) {
            ::close(fd); // Malformed client; keep serving.
            continue;
        }
        if (req.name == "__stop__") {
            CampaignDoneMsg done;
            sendFrame(fd, "svc.coord.send", MsgType::CAMPAIGN_DONE,
                      encodeCampaignDone(done), &err);
            ::close(fd);
            break;
        }
        std::printf("svc: running campaign '%s' (workers=%u)\n",
                    req.name.c_str(),
                    req.workers ? req.workers : opts.svc.workers);
        std::fflush(stdout);
        CampaignDoneMsg done = runRequest(opts, req);
        sendFrame(fd, "svc.coord.send", MsgType::CAMPAIGN_DONE,
                  encodeCampaignDone(done), &err);
        ::close(fd);
    }
    ::close(listen_fd);
    ::unlink(opts.socket_path.c_str());
    return code;
}

int
submitMain(const std::string &socket_path, const CampaignReqMsg &req)
{
    std::signal(SIGPIPE, SIG_IGN);
    std::string err;
    int fd = connectTo(socket_path, &err);
    if (fd < 0) {
        std::fprintf(stderr, "dsmem_svc submit: %s\n", err.c_str());
        return 2;
    }
    if (!sendFrame(fd, "svc.worker.send", MsgType::CAMPAIGN_REQ,
                   encodeCampaignReq(req), &err)) {
        std::fprintf(stderr, "dsmem_svc submit: %s\n", err.c_str());
        ::close(fd);
        return 2;
    }
    Frame frame;
    CampaignDoneMsg done;
    if (!recvFrame(fd, "svc.worker.recv", frame, &err) ||
        frame.type != MsgType::CAMPAIGN_DONE ||
        !decodeCampaignDone(frame.payload, done)) {
        std::fprintf(stderr, "dsmem_svc submit: %s\n",
                     err.empty() ? "malformed reply" : err.c_str());
        ::close(fd);
        return 2;
    }
    ::close(fd);
    if (!done.summary.empty())
        std::fprintf(stderr, "%s\n", done.summary.c_str());
    return done.exit_code;
}

} // namespace dsmem::svc
