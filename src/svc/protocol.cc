#include "svc/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "util/byte_io.h"
#include "util/failpoint.h"

namespace dsmem::svc {

namespace {

uint64_t payloadHash(const std::string &p)
{
    return util::fnv1aUpdate(util::kFnvOffset, p.data(), p.size());
}

/** Arm the caller's failpoint site; false (with err) when it fires. */
bool hitFailpoint(const char *site, std::string *err)
{
    try {
        util::failpoint(site);
    } catch (const std::exception &e) {
        if (err)
            *err = std::string(site) + ": " + e.what();
        return false;
    }
    return true;
}

bool sendAll(int fd, const char *data, size_t n, std::string *err)
{
    size_t off = 0;
    while (off < n) {
        ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("send: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<size_t>(w);
    }
    return true;
}

/** Blocking read of exactly @p n bytes; false on EOF/error. */
bool recvAll(int fd, char *data, size_t n, std::string *err)
{
    size_t off = 0;
    while (off < n) {
        ssize_t r = ::recv(fd, data + off, n - off, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        if (r == 0) {
            if (err)
                *err = "recv: eof";
            return false;
        }
        off += static_cast<size_t>(r);
    }
    return true;
}

uint32_t peekU32(const char *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

uint64_t peekU64(const char *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

constexpr size_t kHeaderBytes = 12; // magic + type + len

} // namespace

void WireOut::f64(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

uint8_t WireIn::u8()
{
    if (!ok || pos + 1 > buf.size()) {
        ok = false;
        return 0;
    }
    return static_cast<uint8_t>(buf[pos++]);
}

uint32_t WireIn::u32()
{
    if (!ok || pos + 4 > buf.size()) {
        ok = false;
        return 0;
    }
    uint32_t v = peekU32(buf.data() + pos);
    pos += 4;
    return v;
}

uint64_t WireIn::u64()
{
    if (!ok || pos + 8 > buf.size()) {
        ok = false;
        return 0;
    }
    uint64_t v = peekU64(buf.data() + pos);
    pos += 8;
    return v;
}

double WireIn::f64()
{
    uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string WireIn::str()
{
    uint32_t n = u32();
    if (!ok || n > buf.size() - pos) {
        ok = false;
        return {};
    }
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
}

bool sendFrame(int fd, const char *site, MsgType type,
               const std::string &payload, std::string *err)
{
    if (!hitFailpoint(site, err))
        return false;
    if (payload.size() > kMaxFrameBytes) {
        if (err)
            *err = "sendFrame: oversized payload";
        return false;
    }
    WireOut w;
    w.u32(kProtocolMagic);
    w.u32(static_cast<uint32_t>(type));
    w.u32(static_cast<uint32_t>(payload.size()));
    w.buf.append(payload);
    w.u64(payloadHash(payload));
    return sendAll(fd, w.buf.data(), w.buf.size(), err);
}

bool recvFrame(int fd, const char *site, Frame &out, std::string *err)
{
    if (!hitFailpoint(site, err))
        return false;
    char hdr[kHeaderBytes];
    if (!recvAll(fd, hdr, sizeof(hdr), err))
        return false;
    if (peekU32(hdr) != kProtocolMagic) {
        if (err)
            *err = "recvFrame: bad magic";
        return false;
    }
    uint32_t type = peekU32(hdr + 4);
    uint32_t len = peekU32(hdr + 8);
    if (len > kMaxFrameBytes) {
        if (err)
            *err = "recvFrame: oversized frame";
        return false;
    }
    std::string payload(len, '\0');
    if (len && !recvAll(fd, payload.data(), len, err))
        return false;
    char sum[8];
    if (!recvAll(fd, sum, sizeof(sum), err))
        return false;
    if (peekU64(sum) != payloadHash(payload)) {
        if (err)
            *err = "recvFrame: payload checksum mismatch";
        return false;
    }
    out.type = static_cast<MsgType>(type);
    out.payload = std::move(payload);
    return true;
}

int FrameReader::next(Frame &out, std::string *err)
{
    if (buf_.size() < kHeaderBytes)
        return 0;
    if (peekU32(buf_.data()) != kProtocolMagic) {
        if (err)
            *err = "frame: bad magic";
        return -1;
    }
    uint32_t type = peekU32(buf_.data() + 4);
    uint32_t len = peekU32(buf_.data() + 8);
    if (len > kMaxFrameBytes) {
        if (err)
            *err = "frame: oversized";
        return -1;
    }
    size_t total = kHeaderBytes + len + 8;
    if (buf_.size() < total)
        return 0;
    std::string payload = buf_.substr(kHeaderBytes, len);
    uint64_t sum = peekU64(buf_.data() + kHeaderBytes + len);
    if (sum != payloadHash(payload)) {
        if (err)
            *err = "frame: payload checksum mismatch";
        return -1;
    }
    buf_.erase(0, total);
    out.type = static_cast<MsgType>(type);
    out.payload = std::move(payload);
    return 1;
}

int drainSocket(int fd, const char *site, FrameReader &rx,
                std::string *err)
{
    if (!hitFailpoint(site, err))
        return -1;
    char tmp[65536];
    for (;;) {
        ssize_t r = ::recv(fd, tmp, sizeof(tmp), MSG_DONTWAIT);
        if (r > 0) {
            rx.feed(tmp, static_cast<size_t>(r));
            continue;
        }
        if (r == 0)
            return 0;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return 1;
        if (errno == EINTR)
            continue;
        if (err)
            *err = std::string("recv: ") + std::strerror(errno);
        return -1;
    }
}

// ---- message payload codecs ----------------------------------------

namespace {

void putModelSpec(WireOut &w, const sim::ModelSpec &s)
{
    w.u8(static_cast<uint8_t>(s.kind));
    w.u8(static_cast<uint8_t>(s.model));
    w.u32(s.window);
    w.u32(s.width);
    w.u8(s.perfect_bp ? 1 : 0);
    w.u8(s.ignore_deps ? 1 : 0);
}

sim::ModelSpec getModelSpec(WireIn &r)
{
    sim::ModelSpec s;
    s.kind = static_cast<sim::ModelSpec::Kind>(r.u8());
    s.model = static_cast<core::ConsistencyModel>(r.u8());
    s.window = r.u32();
    s.width = r.u32();
    s.perfect_bp = r.u8() != 0;
    s.ignore_deps = r.u8() != 0;
    return s;
}

void putMemoryConfig(WireOut &w, const memsys::MemoryConfig &m)
{
    w.u32(m.hit_latency);
    w.u32(m.miss_latency);
    w.u8(static_cast<uint8_t>(m.protocol));
    w.u32(m.banks);
    w.u32(m.bank_occupancy);
    w.u32(m.dram.banks);
    w.u8(static_cast<uint8_t>(m.dram.sched));
    w.u32(m.dram.row_bytes);
    w.u32(m.dram.t_rcd);
    w.u32(m.dram.t_rp);
    w.u32(m.dram.t_cas);
    w.u32(m.dram.bus_cycles);
    w.u32(m.dram.base_latency);
    w.u32(m.dram.batch_cap);
}

memsys::MemoryConfig getMemoryConfig(WireIn &r)
{
    memsys::MemoryConfig m;
    m.hit_latency = r.u32();
    m.miss_latency = r.u32();
    m.protocol = static_cast<memsys::Protocol>(r.u8());
    m.banks = r.u32();
    m.bank_occupancy = r.u32();
    m.dram.banks = r.u32();
    m.dram.sched = static_cast<memsys::SchedPolicy>(r.u8());
    m.dram.row_bytes = r.u32();
    m.dram.t_rcd = r.u32();
    m.dram.t_rp = r.u32();
    m.dram.t_cas = r.u32();
    m.dram.bus_cycles = r.u32();
    m.dram.base_latency = r.u32();
    m.dram.batch_cap = r.u32();
    return m;
}

void putRunResult(WireOut &w, const core::RunResult &x)
{
    w.u64(x.breakdown.busy);
    w.u64(x.breakdown.sync);
    w.u64(x.breakdown.read);
    w.u64(x.breakdown.write);
    w.u64(x.breakdown.pipeline);
    w.u64(x.cycles);
    w.u64(x.instructions);
    w.u64(x.branches);
    w.u64(x.mispredicts);
    w.u64(x.read_misses);
}

core::RunResult getRunResult(WireIn &r)
{
    core::RunResult x;
    x.breakdown.busy = r.u64();
    x.breakdown.sync = r.u64();
    x.breakdown.read = r.u64();
    x.breakdown.write = r.u64();
    x.breakdown.pipeline = r.u64();
    x.cycles = r.u64();
    x.instructions = r.u64();
    x.branches = r.u64();
    x.mispredicts = r.u64();
    x.read_misses = r.u64();
    return x;
}

void putSampleSummary(WireOut &w, const sim::SampleSummary &s)
{
    w.u8(s.sampled ? 1 : 0);
    w.u64(s.windows);
    w.u64(s.measured);
    w.f64(s.cpi_mean);
    w.f64(s.ci95);
}

sim::SampleSummary getSampleSummary(WireIn &r)
{
    sim::SampleSummary s;
    s.sampled = r.u8() != 0;
    s.windows = r.u64();
    s.measured = r.u64();
    s.cpi_mean = r.f64();
    s.ci95 = r.f64();
    return s;
}

void putSamplingPlan(WireOut &w, const sim::SamplingPlan &p)
{
    w.u64(p.period);
    w.u64(p.detailed);
    w.u64(p.warmup);
    w.u64(p.seed);
}

sim::SamplingPlan getSamplingPlan(WireIn &r)
{
    sim::SamplingPlan p;
    p.period = r.u64();
    p.detailed = r.u64();
    p.warmup = r.u64();
    p.seed = r.u64();
    return p;
}

} // namespace

std::string encodeHello(const HelloMsg &m)
{
    WireOut w;
    w.u32(m.worker);
    w.u64(m.pid);
    w.u32(m.version);
    return std::move(w.buf);
}

bool decodeHello(const std::string &p, HelloMsg &m)
{
    WireIn r(p);
    m.worker = r.u32();
    m.pid = r.u64();
    m.version = r.u32();
    return r.done();
}

std::string encodeWelcome(const WelcomeMsg &m)
{
    WireOut w;
    w.str(m.bench);
    w.str(m.trace_dir);
    w.u64(m.signature);
    w.u32(m.heartbeat_ms);
    w.u32(m.max_attempts);
    w.u32(m.backoff_base_ms);
    w.u32(m.backoff_cap_ms);
    w.u8(m.stream_exec);
    putSamplingPlan(w, m.plan);
    w.u32(static_cast<uint32_t>(m.units.size()));
    for (const UnitDecl &u : m.units) {
        w.u32(u.app);
        putMemoryConfig(w, u.mem);
        w.u8(u.small);
        w.u32(static_cast<uint32_t>(u.specs.size()));
        for (const sim::ModelSpec &s : u.specs)
            putModelSpec(w, s);
    }
    return std::move(w.buf);
}

bool decodeWelcome(const std::string &p, WelcomeMsg &m)
{
    WireIn r(p);
    m.bench = r.str();
    m.trace_dir = r.str();
    m.signature = r.u64();
    m.heartbeat_ms = r.u32();
    m.max_attempts = r.u32();
    m.backoff_base_ms = r.u32();
    m.backoff_cap_ms = r.u32();
    m.stream_exec = r.u8();
    m.plan = getSamplingPlan(r);
    uint32_t units = r.u32();
    if (!r.ok || units > 1u << 20)
        return false;
    m.units.clear();
    m.units.reserve(units);
    for (uint32_t i = 0; i < units; ++i) {
        UnitDecl u;
        u.app = r.u32();
        u.mem = getMemoryConfig(r);
        u.small = r.u8();
        uint32_t specs = r.u32();
        if (!r.ok || specs > 1u << 20)
            return false;
        u.specs.reserve(specs);
        for (uint32_t s = 0; s < specs; ++s)
            u.specs.push_back(getModelSpec(r));
        m.units.push_back(std::move(u));
    }
    return r.done();
}

std::string encodeAssign(const AssignMsg &m)
{
    WireOut w;
    w.u32(m.unit);
    w.u32(m.spec);
    w.u64(m.seq);
    return std::move(w.buf);
}

bool decodeAssign(const std::string &p, AssignMsg &m)
{
    WireIn r(p);
    m.unit = r.u32();
    m.spec = r.u32();
    m.seq = r.u64();
    return r.done();
}

std::string encodeResult(const ResultMsg &m)
{
    WireOut w;
    w.u32(m.unit);
    w.u32(m.spec);
    w.u64(m.seq);
    w.u8(m.ok);
    w.str(m.error);
    putRunResult(w, m.result);
    putSampleSummary(w, m.sampling);
    w.f64(m.wall_ms);
    w.u8(m.has_trace);
    w.str(m.trace_origin);
    w.u64(m.trace_instructions);
    w.f64(m.trace_wall_ms);
    w.f64(m.gen_ms);
    w.f64(m.load_ms);
    w.u64(m.peak_rss_bytes);
    w.u64(m.view_bytes_resident);
    return std::move(w.buf);
}

bool decodeResult(const std::string &p, ResultMsg &m)
{
    WireIn r(p);
    m.unit = r.u32();
    m.spec = r.u32();
    m.seq = r.u64();
    m.ok = r.u8();
    m.error = r.str();
    m.result = getRunResult(r);
    m.sampling = getSampleSummary(r);
    m.wall_ms = r.f64();
    m.has_trace = r.u8();
    m.trace_origin = r.str();
    m.trace_instructions = r.u64();
    m.trace_wall_ms = r.f64();
    m.gen_ms = r.f64();
    m.load_ms = r.f64();
    m.peak_rss_bytes = r.u64();
    m.view_bytes_resident = r.u64();
    return r.done();
}

std::string encodeHeartbeat(const HeartbeatMsg &m)
{
    WireOut w;
    w.u32(m.worker);
    w.u64(m.beats);
    return std::move(w.buf);
}

bool decodeHeartbeat(const std::string &p, HeartbeatMsg &m)
{
    WireIn r(p);
    m.worker = r.u32();
    m.beats = r.u64();
    return r.done();
}

std::string encodeCampaignReq(const CampaignReqMsg &m)
{
    WireOut w;
    w.str(m.name);
    w.u8(m.small);
    w.u32(m.workers);
    w.str(m.json_path);
    w.u8(m.stable_json);
    w.str(m.journal_path);
    w.u8(m.resume);
    w.str(m.trace_dir);
    return std::move(w.buf);
}

bool decodeCampaignReq(const std::string &p, CampaignReqMsg &m)
{
    WireIn r(p);
    m.name = r.str();
    m.small = r.u8();
    m.workers = r.u32();
    m.json_path = r.str();
    m.stable_json = r.u8();
    m.journal_path = r.str();
    m.resume = r.u8();
    m.trace_dir = r.str();
    return r.done();
}

std::string encodeCampaignDone(const CampaignDoneMsg &m)
{
    WireOut w;
    w.u32(static_cast<uint32_t>(m.exit_code));
    w.str(m.summary);
    return std::move(w.buf);
}

bool decodeCampaignDone(const std::string &p, CampaignDoneMsg &m)
{
    WireIn r(p);
    m.exit_code = static_cast<int32_t>(r.u32());
    m.summary = r.str();
    return r.done();
}

} // namespace dsmem::svc
