#ifndef DSMEM_SVC_WORKER_H
#define DSMEM_SVC_WORKER_H

#include <cstdint>
#include <string>

namespace dsmem::svc {

struct WorkerOptions {
    std::string socket_path; ///< Coordinator's AF_UNIX listen path.
    uint32_t id = 0;         ///< Slot id assigned by the coordinator.
};

/**
 * Entry point of one worker process (`dsmem_svc worker`): connect to
 * the coordinator, introduce itself (HELLO), receive the campaign
 * declaration (WELCOME), then loop running ASSIGNed cells and
 * reporting RESULTs while a background thread heartbeats the lease.
 *
 * The worker is deliberately stateless between cells: every phase-2
 * result is computed from the immutable trace view alone, so the
 * coordinator may kill, respawn, or re-assign at any moment and the
 * recomputed bits are identical. Returns the process exit code
 * (0 = orderly SHUTDOWN, 1 = connection lost / protocol error).
 */
int workerMain(const WorkerOptions &opts);

} // namespace dsmem::svc

#endif // DSMEM_SVC_WORKER_H
