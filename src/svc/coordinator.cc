#include "svc/coordinator.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/failpoint.h"

namespace dsmem::svc {

namespace {

uint64_t
nowMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
selfExe()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return buf;
}

} // namespace

Coordinator::Coordinator(runner::Campaign &campaign,
                         ServiceOptions opts)
    : campaign_(campaign), opts_(std::move(opts))
{
    if (opts_.workers == 0)
        opts_.workers = 1;
    stats_.cells_by_worker.assign(opts_.workers, 0);
    stats_.deaths_by_worker.assign(opts_.workers, 0);
}

Coordinator::~Coordinator()
{
    for (Slot &slot : slots_) {
        if (slot.fd >= 0)
            ::close(slot.fd);
        if (slot.pid > 0) {
            ::kill(slot.pid, SIGKILL);
            ::waitpid(slot.pid, nullptr, 0);
        }
    }
    for (PendingConn &p : pending_)
        if (p.fd >= 0)
            ::close(p.fd);
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(socket_path_.c_str());
    }
}

bool
Coordinator::setupSocket(std::string *err)
{
    socket_path_ = opts_.socket_path;
    if (socket_path_.empty()) {
        static int counter = 0;
        socket_path_ = "/tmp/dsmem-svc." +
                       std::to_string(::getpid()) + "." +
                       std::to_string(++counter) + ".sock";
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path_.size() >= sizeof(addr.sun_path)) {
        *err = "socket path too long: " + socket_path_;
        return false;
    }
    std::memcpy(addr.sun_path, socket_path_.c_str(),
                socket_path_.size() + 1);
    ::unlink(socket_path_.c_str()); // Stale path from a crashed run.
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_,
                 static_cast<int>(opts_.workers) + 8) != 0) {
        *err = std::string("bind/listen: ") + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    return true;
}

bool
Coordinator::spawnWorker(Slot &slot)
{
    try {
        util::failpoint("svc.spawn");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "svc: spawn of worker %u failed: %s\n",
                     slot.id, e.what());
        return false;
    }
    std::string exe =
        opts_.worker_exe.empty() ? selfExe() : opts_.worker_exe;
    if (exe.empty()) {
        std::fprintf(stderr,
                     "svc: cannot resolve worker executable\n");
        return false;
    }
    std::string id = std::to_string(slot.id);
    pid_t pid = ::fork();
    if (pid < 0) {
        std::fprintf(stderr, "svc: fork: %s\n", std::strerror(errno));
        return false;
    }
    if (pid == 0) {
        ::execl(exe.c_str(), exe.c_str(), "worker", "--socket",
                socket_path_.c_str(), "--id", id.c_str(),
                static_cast<char *>(nullptr));
        std::fprintf(stderr, "svc: exec %s: %s\n", exe.c_str(),
                     std::strerror(errno));
        ::_exit(127);
    }
    slot.pid = pid;
    slot.last_seen_ms = nowMs(); // Grace until HELLO arrives.
    if (opts_.print_workers) {
        std::printf("svc: worker %u pid %d\n", slot.id,
                    static_cast<int>(pid));
        std::fflush(stdout);
    }
    return true;
}

void
Coordinator::requeue(CellRef cell)
{
    if (done_.count(cell) || failed_.count(cell))
        return;
    if (redispatch_.insert(cell).second)
        ++stats_.redispatched;
}

void
Coordinator::retireSlot(Slot &slot)
{
    slot.retired = true;
    // The shard backlog outlives its slot: hand every unleased cell
    // to the redispatch set (stealing would also pick them up, but a
    // retired slot never gets a replacement to steal *for*).
    for (const CellRef &cell : slot.queue)
        if (!done_.count(cell) && !failed_.count(cell))
            redispatch_.insert(cell);
    slot.queue.clear();
}

void
Coordinator::workerDied(Slot &slot, const char *why)
{
    if (slot.fd >= 0) {
        ::close(slot.fd);
        slot.fd = -1;
    }
    slot.connected = false;
    if (slot.pid > 0) {
        ::kill(slot.pid, SIGKILL); // Idempotent; lease-expiry path.
        ::waitpid(slot.pid, nullptr, 0);
        slot.pid = -1;
    }
    for (const CellRef &cell : slot.leased)
        requeue(cell);
    slot.leased.clear();
    ++stats_.worker_deaths;
    if (slot.id < stats_.deaths_by_worker.size())
        ++stats_.deaths_by_worker[slot.id];
    if (opts_.print_workers) {
        std::printf("svc: worker %u died (%s)\n", slot.id, why);
        std::fflush(stdout);
    }
    if (slot.respawns < opts_.respawn_per_slot) {
        ++slot.respawns;
        if (spawnWorker(slot)) {
            ++stats_.respawns;
            return;
        }
    }
    retireSlot(slot);
}

bool
Coordinator::nextCell(Slot &slot, CellRef &out)
{
    // Own shard backlog first (trace locality), then orphans of dead
    // workers, then steal from the heaviest surviving backlog.
    while (!slot.queue.empty()) {
        out = slot.queue.front();
        slot.queue.pop_front();
        if (!done_.count(out) && !failed_.count(out))
            return true;
    }
    while (!redispatch_.empty()) {
        out = *redispatch_.begin();
        redispatch_.erase(redispatch_.begin());
        if (!done_.count(out) && !failed_.count(out))
            return true;
    }
    Slot *victim = nullptr;
    for (Slot &other : slots_)
        if (other.id != slot.id && !other.queue.empty() &&
            (!victim || other.queue.size() > victim->queue.size()))
            victim = &other;
    while (victim && !victim->queue.empty()) {
        // Steal from the tail: the head cells keep their trace
        // affinity with the victim.
        out = victim->queue.back();
        victim->queue.pop_back();
        if (!done_.count(out) && !failed_.count(out)) {
            ++stats_.stolen;
            return true;
        }
    }
    return false;
}

void
Coordinator::dispatchTo(Slot &slot)
{
    if (!slot.connected || !slot.leased.empty())
        return;
    CellRef cell;
    if (!nextCell(slot, cell))
        return;
    campaign_.journal().appendLease(runner::JournalLease{
        cell.unit, cell.spec, slot.id, epoch_});
    AssignMsg assign;
    assign.unit = static_cast<uint32_t>(cell.unit);
    assign.spec = static_cast<uint32_t>(cell.spec);
    assign.seq = ++seq_;
    std::string err;
    if (!sendFrame(slot.fd, "svc.coord.send", MsgType::ASSIGN,
                   encodeAssign(assign), &err)) {
        requeue(cell);
        workerDied(slot, "send failed");
        return;
    }
    slot.leased.push_back(cell);
    ++stats_.dispatched;
}

void
Coordinator::dispatchIdle()
{
    for (Slot &slot : slots_)
        dispatchTo(slot);
}

std::string
Coordinator::specLabel(const CellRef &cell) const
{
    if (cell.unit >= campaign_.size())
        return "";
    const std::vector<sim::ModelSpec> &specs =
        campaign_.unitSpecs(cell.unit);
    return cell.spec < specs.size() ? specs[cell.spec].label() : "";
}

void
Coordinator::settle(CellRef cell, bool failed)
{
    const bool fresh = failed ? failed_.insert(cell).second
                              : done_.insert(cell).second;
    if (fresh && remaining_ > 0)
        --remaining_;
}

void
Coordinator::handleResult(Slot &slot, const ResultMsg &msg)
{
    CellRef cell{msg.unit, msg.spec};
    slot.leased.erase(
        std::remove(slot.leased.begin(), slot.leased.end(), cell),
        slot.leased.end());
    stats_.peak_rss_bytes =
        std::max(stats_.peak_rss_bytes, msg.peak_rss_bytes);
    stats_.view_bytes_resident =
        std::max(stats_.view_bytes_resident, msg.view_bytes_resident);
    if (msg.has_trace)
        campaign_.acceptRemoteTrace(msg.unit, msg.trace_origin,
                                    msg.trace_instructions,
                                    msg.trace_wall_ms, msg.gen_ms,
                                    msg.load_ms);
    if (!msg.ok) {
        // A worker-side permanent failure is deterministic (retries
        // already happened there); re-dispatching would just fail
        // again, so the cell is settled as failed — the campaign
        // completes degraded and exits 1, same as --jobs N would.
        campaign_.recordRemoteError(msg.unit, specLabel(cell), "svc",
                                    msg.error, true);
        settle(cell, true);
        ++stats_.failed_cells;
        return;
    }
    switch (campaign_.acceptRemoteRow(msg.unit, msg.spec, msg.result,
                                      msg.sampling, msg.wall_ms)) {
    case runner::Campaign::Accept::OK:
        settle(cell, false);
        ++stats_.results;
        if (slot.id < stats_.cells_by_worker.size())
            ++stats_.cells_by_worker[slot.id];
        break;
    case runner::Campaign::Accept::DUPLICATE:
        ++stats_.duplicates;
        break;
    case runner::Campaign::Accept::MISMATCH:
        campaign_.recordRemoteError(
            msg.unit, specLabel(cell), "svc.mismatch",
            "conflicting duplicate result for a deterministic cell",
            true);
        ++stats_.mismatches;
        break;
    case runner::Campaign::Accept::BAD_REF:
        campaign_.recordRemoteError(
            msg.unit, "", "svc",
            "result for a cell outside the declaration set", true);
        break;
    }
}

void
Coordinator::handleFrame(Slot &slot, const Frame &frame)
{
    slot.last_seen_ms = nowMs();
    switch (frame.type) {
    case MsgType::HEARTBEAT:
        ++stats_.heartbeats;
        break;
    case MsgType::RESULT: {
        ResultMsg msg;
        if (decodeResult(frame.payload, msg))
            handleResult(slot, msg);
        break;
    }
    default:
        break; // Unknown frames from a worker are ignored.
    }
}

void
Coordinator::acceptConnections()
{
    for (;;) {
        try {
            util::failpoint("svc.accept");
        } catch (const std::exception &e) {
            std::fprintf(stderr, "svc: accept: %s\n", e.what());
            return;
        }
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN on the non-blocking listen socket.
        }
        pending_.push_back(PendingConn{fd, {}});
    }
}

void
Coordinator::reapChildren()
{
    for (;;) {
        int status = 0;
        pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            return;
        for (Slot &slot : slots_) {
            if (slot.pid == pid) {
                slot.pid = -1; // Reaped; workerDied must not wait.
                workerDied(slot, "process exited");
                break;
            }
        }
    }
}

void
Coordinator::checkLeases()
{
    const uint64_t now = nowMs();
    for (Slot &slot : slots_) {
        if (slot.retired || slot.pid <= 0)
            continue;
        if (now - slot.last_seen_ms > opts_.lease_ms)
            workerDied(slot, "lease expired");
    }
}

bool
Coordinator::poolAlive() const
{
    for (const Slot &slot : slots_)
        if (!slot.retired)
            return true;
    return false;
}

void
Coordinator::runInlineFallback()
{
    // Graceful degradation's last rung: every worker slot retired,
    // so the coordinator runs the remaining cells itself, in sorted
    // (declaration) order for determinism.
    std::set<CellRef> rest = redispatch_;
    redispatch_.clear();
    for (const Slot &slot : slots_)
        for (const CellRef &cell : slot.queue)
            rest.insert(cell);
    std::vector<CellRef> pending = campaign_.pendingCells();
    for (const CellRef &cell : pending)
        if (!done_.count(cell) && !failed_.count(cell))
            rest.insert(cell);
    for (const CellRef &cell : rest) {
        if (done_.count(cell) || failed_.count(cell))
            continue;
        bool ok = campaign_.runCellInline(cell.unit, cell.spec);
        settle(cell, !ok);
        ++stats_.inline_cells;
    }
}

void
Coordinator::shutdownPool()
{
    for (Slot &slot : slots_) {
        if (slot.connected && slot.fd >= 0) {
            std::string err;
            sendFrame(slot.fd, "svc.coord.send", MsgType::SHUTDOWN,
                      "", &err);
        }
    }
    // Give workers a moment to exit on their own, then force.
    const uint64_t deadline = nowMs() + 2000;
    for (Slot &slot : slots_) {
        while (slot.pid > 0) {
            int status = 0;
            pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
            if (r == slot.pid || r < 0) {
                slot.pid = -1;
                break;
            }
            if (nowMs() >= deadline) {
                ::kill(slot.pid, SIGKILL);
                ::waitpid(slot.pid, nullptr, 0);
                slot.pid = -1;
                break;
            }
            std::this_thread::yield();
        }
        if (slot.fd >= 0) {
            ::close(slot.fd);
            slot.fd = -1;
        }
        slot.connected = false;
    }
}

int
Coordinator::run()
{
    std::signal(SIGPIPE, SIG_IGN);

    if (!campaign_.prepare())
        return campaign_.ok() ? 0 : 1;

    std::vector<CellRef> pending = campaign_.pendingCells();
    remaining_ = pending.size();
    if (remaining_ == 0) {
        campaign_.finish();
        return campaign_.ok() ? 0 : 1;
    }

    epoch_ = campaign_.resumedEpoch() + 1;
    campaign_.journal().appendEpoch(epoch_, opts_.workers);

    std::string err;
    if (!setupSocket(&err)) {
        std::fprintf(stderr, "svc: %s (running inline)\n",
                     err.c_str());
        runInlineFallback();
        campaign_.finish();
        return campaign_.ok() ? 0 : 1;
    }
    // Non-blocking accepts; worker fds stay blocking for writes and
    // are drained with MSG_DONTWAIT.
    int fl = ::fcntl(listen_fd_, F_GETFL, 0);
    ::fcntl(listen_fd_, F_SETFL, fl | O_NONBLOCK);

    // Shard the pending cells and fork the pool.
    runner::Campaign::ShardPlan plan =
        campaign_.shardPlan(opts_.workers);
    slots_.resize(opts_.workers);
    for (uint32_t k = 0; k < opts_.workers; ++k) {
        slots_[k].id = k;
        slots_[k].queue.assign(plan.shards[k].begin(),
                               plan.shards[k].end());
        if (!spawnWorker(slots_[k]))
            retireSlot(slots_[k]);
    }

    // The WELCOME every worker (and respawn) receives.
    {
        WelcomeMsg welcome;
        welcome.bench = campaign_.benchName();
        welcome.trace_dir = campaign_.options().trace_dir;
        welcome.signature = campaign_.signature();
        welcome.heartbeat_ms = opts_.heartbeat_ms;
        welcome.max_attempts = campaign_.options().max_attempts;
        welcome.backoff_base_ms = campaign_.options().backoff_base_ms;
        welcome.backoff_cap_ms = campaign_.options().backoff_cap_ms;
        welcome.stream_exec = static_cast<uint8_t>(
            campaign_.options().stream_exec);
        welcome.plan = campaign_.options().sampling;
        for (size_t u = 0; u < campaign_.size(); ++u) {
            UnitDecl decl;
            decl.app = static_cast<uint32_t>(campaign_.unitApp(u));
            decl.mem = campaign_.unitMem(u);
            decl.small = campaign_.unitSmall(u) ? 1 : 0;
            decl.specs = campaign_.unitSpecs(u);
            welcome.units.push_back(std::move(decl));
        }
        welcome_ = encodeWelcome(welcome);
    }

    while (remaining_ > 0) {
        if (!poolAlive() && pending_.empty()) {
            runInlineFallback();
            break;
        }

        std::vector<pollfd> fds;
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
        for (PendingConn &p : pending_)
            fds.push_back(pollfd{p.fd, POLLIN, 0});
        for (Slot &slot : slots_)
            if (slot.connected)
                fds.push_back(pollfd{slot.fd, POLLIN, 0});
        int rc = ::poll(fds.data(),
                        static_cast<nfds_t>(fds.size()), 100);
        if (rc < 0 && errno != EINTR)
            break;

        acceptConnections();

        // Pending connections: wait for HELLO, bind to a slot.
        for (size_t i = 0; i < pending_.size();) {
            PendingConn &p = pending_[i];
            std::string derr;
            int st = drainSocket(p.fd, "svc.coord.recv", p.rx, &derr);
            Frame f;
            int got = p.rx.next(f, &derr);
            if (got == 1 && f.type == MsgType::HELLO) {
                HelloMsg hello;
                if (decodeHello(f.payload, hello) &&
                    hello.version == kProtocolVersion &&
                    hello.worker < slots_.size() &&
                    !slots_[hello.worker].connected &&
                    !slots_[hello.worker].retired) {
                    Slot &slot = slots_[hello.worker];
                    slot.fd = p.fd;
                    slot.connected = true;
                    slot.rx = std::move(p.rx);
                    slot.last_seen_ms = nowMs();
                    pending_.erase(pending_.begin() +
                                   static_cast<long>(i));
                    std::string serr;
                    if (!sendFrame(slot.fd, "svc.coord.send",
                                   MsgType::WELCOME, welcome_,
                                   &serr))
                        workerDied(slot, "welcome failed");
                    continue;
                }
                ::close(p.fd); // Bogus hello: drop the connection.
                pending_.erase(pending_.begin() +
                               static_cast<long>(i));
                continue;
            }
            if (st != 1 || got < 0) {
                ::close(p.fd);
                pending_.erase(pending_.begin() +
                               static_cast<long>(i));
                continue;
            }
            ++i;
        }

        // Connected workers: drain frames, then handle each.
        for (Slot &slot : slots_) {
            if (!slot.connected)
                continue;
            std::string derr;
            int st = drainSocket(slot.fd, "svc.coord.recv", slot.rx,
                                 &derr);
            Frame f;
            int got;
            while ((got = slot.rx.next(f, &derr)) == 1) {
                handleFrame(slot, f);
                if (!slot.connected)
                    break; // Died while handling (send failure).
            }
            if (slot.connected && (st != 1 || got < 0))
                workerDied(slot, st == 0 ? "connection closed"
                                         : "protocol error");
        }

        reapChildren();
        checkLeases();
        dispatchIdle();
    }

    shutdownPool();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(socket_path_.c_str());
    }

    campaign_.finish();
    return campaign_.ok() ? 0 : 1;
}

std::string
Coordinator::statsJson() const
{
    std::string s = "{";
    auto field = [&s](const char *k, uint64_t v, bool first = false) {
        if (!first)
            s += ",";
        s += "\"";
        s += k;
        s += "\":";
        s += std::to_string(v);
    };
    field("workers", opts_.workers, true);
    field("dispatched", stats_.dispatched);
    field("results", stats_.results);
    field("duplicates", stats_.duplicates);
    field("mismatches", stats_.mismatches);
    field("redispatched", stats_.redispatched);
    field("stolen", stats_.stolen);
    field("worker_deaths", stats_.worker_deaths);
    field("respawns", stats_.respawns);
    field("inline_cells", stats_.inline_cells);
    field("heartbeats", stats_.heartbeats);
    field("failed_cells", stats_.failed_cells);
    field("peak_rss_bytes", stats_.peak_rss_bytes);
    field("view_bytes_resident", stats_.view_bytes_resident);
    s += ",\"stream_exec\":\"";
    s += sim::streamExecName(campaign_.options().stream_exec);
    s += "\"";
    s += ",\"per_worker\":[";
    for (size_t k = 0; k < stats_.cells_by_worker.size(); ++k) {
        if (k)
            s += ",";
        s += "{\"id\":" + std::to_string(k) +
             ",\"cells\":" + std::to_string(stats_.cells_by_worker[k]) +
             ",\"deaths\":" +
             std::to_string(stats_.deaths_by_worker[k]) + "}";
    }
    s += "]}";
    return s;
}

} // namespace dsmem::svc
