#ifndef DSMEM_SVC_CATALOG_H
#define DSMEM_SVC_CATALOG_H

#include <string>
#include <vector>

#include "runner/campaign.h"

namespace dsmem::svc {

/**
 * The campaign catalog: named declaration sets the service can run
 * without linking a bench binary. A catalog entry declares *exactly*
 * the same units, in the same order, as its bench counterpart, so a
 * sharded service run is byte-comparable (--stable-json) against the
 * bench's own --jobs N output — the invariant the chaos smoke checks.
 */
struct CatalogEntry {
    const char *name;  ///< Catalog key ("figure3", "smoke", ...).
    const char *bench; ///< Campaign bench_name (journal signature).
    const char *what;  ///< One-line description for `dsmem_svc list`.
};

/** Every named campaign, stable order. */
const std::vector<CatalogEntry> &campaignCatalog();

/** The bench_name a catalog entry's Campaign is constructed with;
 *  "" for an unknown name. */
std::string benchNameFor(const std::string &name);

/**
 * Declare the named campaign's units into @p campaign (constructed
 * with benchNameFor(name)). @p small selects the reduced problem
 * size. False with @p err set for an unknown name.
 */
bool declareCampaign(const std::string &name, bool small,
                     runner::Campaign &campaign, std::string *err);

} // namespace dsmem::svc

#endif // DSMEM_SVC_CATALOG_H
