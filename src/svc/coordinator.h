#ifndef DSMEM_SVC_COORDINATOR_H
#define DSMEM_SVC_COORDINATOR_H

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include <sys/types.h>

#include "runner/campaign.h"
#include "svc/protocol.h"

namespace dsmem::svc {

/** Dispatch-layer counters for one coordinated campaign. */
struct ServiceStats {
    uint64_t dispatched = 0;    ///< ASSIGN frames sent.
    uint64_t results = 0;       ///< Rows accepted (first completion).
    uint64_t duplicates = 0;    ///< At-least-once redeliveries absorbed.
    uint64_t mismatches = 0;    ///< Conflicting duplicate results (poison).
    uint64_t redispatched = 0;  ///< Leases requeued off dead workers.
    uint64_t stolen = 0;        ///< Cells moved between shard queues.
    uint64_t worker_deaths = 0; ///< Connections lost or leases expired.
    uint64_t respawns = 0;      ///< Replacement workers forked.
    uint64_t inline_cells = 0;  ///< Cells run in-process (pool dead).
    uint64_t heartbeats = 0;    ///< HEARTBEAT frames received.
    uint64_t failed_cells = 0;  ///< Worker-reported permanent failures.
    /** Max worker-reported peak RSS (bytes) across all results — the
     *  pool's per-process memory high-water mark. */
    uint64_t peak_rss_bytes = 0;
    /** Max worker-reported resident trace bytes (compressed chunks
     *  when the streaming policy kept the trace chunked, the flat SoA
     *  footprint otherwise). */
    uint64_t view_bytes_resident = 0;
    /** Rows accepted per worker slot (index = slot id). */
    std::vector<uint64_t> cells_by_worker;
    /** Deaths per worker slot. */
    std::vector<uint64_t> deaths_by_worker;
};

struct ServiceOptions {
    unsigned workers = 2;
    /** Heartbeat silence after which a worker's lease is revoked and
     *  the process SIGKILLed (ms). */
    unsigned lease_ms = 10000;
    /** Worker heartbeat period (ms); shipped in WELCOME. */
    unsigned heartbeat_ms = 500;
    /** Replacement workers forked per slot before it is retired. */
    unsigned respawn_per_slot = 2;
    /** AF_UNIX listen path; "" = auto under /tmp (pid-scoped). */
    std::string socket_path;
    /** Worker executable; "" = /proc/self/exe (dsmem_svc re-execs
     *  itself with the `worker` subcommand). */
    std::string worker_exe;
    /** Print "svc: worker N pid P" lines (the chaos driver's input). */
    bool print_workers = true;
};

/**
 * The sharded campaign coordinator: runs one runner::Campaign to
 * completion across a pool of worker *processes* with journal-backed
 * at-least-once dispatch.
 *
 * Crash-tolerance model (DESIGN.md §13):
 *  - Dispatch is a *lease*: advisory `lease` records journal who was
 *    asked, the durable commit stays the campaign's own `row` record,
 *    written only when a result is accepted. Losing any number of
 *    leases loses no data — the cells just run again.
 *  - A worker death (socket EOF, SIGCHLD, or heartbeat silence past
 *    lease_ms) requeues its leased cells and shard queue for
 *    deterministic re-dispatch; the slot respawns up to
 *    respawn_per_slot times, then retires (the pool shrinks).
 *  - Duplicate completions (a redispatched cell whose first worker
 *    was slow, not dead) resolve first-result-wins: identical bits
 *    are counted and dropped, different bits poison the run — two
 *    workers disagreeing on a deterministic cell means corruption.
 *  - If the whole pool dies, the coordinator degrades to running the
 *    remaining cells in-process; the exit-code contract holds.
 *  - Killing the coordinator itself loses nothing either: --resume
 *    replays the journal and re-runs only uncommitted cells.
 *
 * Results are bit-identical to `--jobs N` single-process execution
 * for any worker count and any kill schedule, because phase 2 is a
 * pure function of the immutable trace and the campaign orders rows
 * by declaration, never by completion.
 */
class Coordinator
{
  public:
    Coordinator(runner::Campaign &campaign, ServiceOptions opts);
    ~Coordinator();

    /** Run to completion; returns the process exit code (0 iff the
     *  campaign completed every declared row). */
    int run();

    const ServiceStats &stats() const { return stats_; }

    /** The dispatch counters as a JSON object (EXPERIMENTS.md). */
    std::string statsJson() const;

  private:
    using CellRef = runner::Campaign::CellRef;

    struct Slot {
        uint32_t id = 0;
        pid_t pid = -1;
        int fd = -1;
        bool connected = false;
        bool retired = false;
        unsigned respawns = 0;
        uint64_t last_seen_ms = 0; ///< Last frame from this worker.
        std::deque<CellRef> queue; ///< Shard backlog (unleased).
        std::vector<CellRef> leased;
        FrameReader rx;
    };

    struct PendingConn {
        int fd = -1;
        FrameReader rx;
    };

    bool setupSocket(std::string *err);
    bool spawnWorker(Slot &slot);
    void workerDied(Slot &slot, const char *why);
    void retireSlot(Slot &slot);
    void requeue(CellRef cell);
    bool nextCell(Slot &slot, CellRef &out);
    void dispatchIdle();
    void dispatchTo(Slot &slot);
    void handleFrame(Slot &slot, const Frame &frame);
    void handleResult(Slot &slot, const ResultMsg &msg);
    void acceptConnections();
    void reapChildren();
    void checkLeases();
    void settle(CellRef cell, bool failed);
    void shutdownPool();
    void runInlineFallback();
    bool poolAlive() const;
    std::string specLabel(const CellRef &cell) const;

    runner::Campaign &campaign_;
    ServiceOptions opts_;
    ServiceStats stats_;
    std::string socket_path_;
    std::string welcome_; ///< Encoded once, sent to every worker.
    int listen_fd_ = -1;
    uint64_t epoch_ = 0;
    uint64_t seq_ = 0;
    size_t remaining_ = 0;
    std::vector<Slot> slots_;
    std::vector<PendingConn> pending_;
    std::set<CellRef> redispatch_; ///< Orphaned cells, sorted.
    std::set<CellRef> done_;
    std::set<CellRef> failed_;
};

} // namespace dsmem::svc

#endif // DSMEM_SVC_COORDINATOR_H
