#include "stats/table.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dsmem::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        throw std::invalid_argument("Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        throw std::invalid_argument("Table row width mismatch");
    rows_.push_back(std::move(cells));
}

void
Table::beginRow()
{
    if (in_row_)
        throw std::logic_error("Table::beginRow while a row is open");
    pending_.clear();
    in_row_ = true;
}

void
Table::cell(const std::string &text)
{
    if (!in_row_)
        throw std::logic_error("Table::cell outside beginRow/endRow");
    if (pending_.size() >= headers_.size())
        throw std::logic_error("Table::cell exceeds column count");
    pending_.push_back(text);
}

void
Table::cell(uint64_t value)
{
    cell(withCommas(value));
}

void
Table::cell(int64_t value)
{
    if (value < 0) {
        cell("-" + withCommas(static_cast<uint64_t>(-value)));
    } else {
        cell(withCommas(static_cast<uint64_t>(value)));
    }
}

void
Table::cell(double value, int precision)
{
    cell(fixed(value, precision));
}

void
Table::endRow()
{
    if (!in_row_)
        throw std::logic_error("Table::endRow without beginRow");
    pending_.resize(headers_.size());
    rows_.push_back(pending_);
    pending_.clear();
    in_row_ = false;
}

const std::string &
Table::at(size_t row, size_t col) const
{
    return rows_.at(row).at(col);
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c] << " ";
        }
        os << "|\n";
    };

    std::ostringstream os;
    emit_row(os, headers_);
    for (size_t c = 0; c < widths.size(); ++c)
        os << "|" << std::string(widths[c] + 2, '-');
    os << "|\n";
    for (const auto &row : rows_)
        emit_row(os, row);
    return os.str();
}

std::string
Table::withCommas(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    size_t lead = digits.size() % 3;
    if (lead == 0)
        lead = 3;
    for (size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - lead) % 3 == 0 && i >= lead)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
Table::fixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::percent(double fraction, int precision)
{
    return fixed(fraction * 100.0, precision) + "%";
}

std::string
Table::countAndRate(uint64_t count, uint64_t busy_cycles, int precision)
{
    double rate = busy_cycles == 0
        ? 0.0
        : 1000.0 * static_cast<double>(count) /
            static_cast<double>(busy_cycles);
    std::ostringstream os;
    os << withCommas(count) << " (" << fixed(rate, precision) << ")";
    return os.str();
}

} // namespace dsmem::stats
