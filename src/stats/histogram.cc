#include "stats/histogram.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dsmem::stats {

Histogram::Histogram(uint64_t bucket_width, size_t num_buckets)
    : bucket_width_(bucket_width), buckets_(num_buckets, 0)
{
    if (bucket_width == 0)
        throw std::invalid_argument("Histogram bucket width must be > 0");
    if (num_buckets == 0)
        throw std::invalid_argument("Histogram needs at least one bucket");
}

void
Histogram::add(uint64_t value, uint64_t count)
{
    if (count == 0)
        return;
    size_t idx = static_cast<size_t>(value / bucket_width_);
    if (idx < buckets_.size()) {
        buckets_[idx] += count;
    } else {
        overflow_ += count;
    }
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    count_ += count;
    sum_ += value * count;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

double
Histogram::fractionAbove(uint64_t threshold) const
{
    if (count_ == 0)
        return 0.0;
    uint64_t above = overflow_;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        uint64_t low_edge = i * bucket_width_;
        if (low_edge > threshold)
            above += buckets_[i];
    }
    return static_cast<double>(above) / static_cast<double>(count_);
}

double
Histogram::fractionBetween(uint64_t lo, uint64_t hi) const
{
    if (count_ == 0 || hi < lo)
        return 0.0;
    uint64_t inside = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        uint64_t low_edge = i * bucket_width_;
        uint64_t high_edge = low_edge + bucket_width_ - 1;
        if (low_edge >= lo && high_edge <= hi)
            inside += buckets_[i];
    }
    return static_cast<double>(inside) / static_cast<double>(count_);
}

uint64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    uint64_t target =
        static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5);
    uint64_t running = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        running += buckets_[i];
        if (running >= target)
            return (i + 1) * bucket_width_;
    }
    return max();
}

void
Histogram::merge(const Histogram &other)
{
    if (other.bucket_width_ != bucket_width_ ||
        other.buckets_.size() != buckets_.size()) {
        throw std::invalid_argument("Histogram::merge geometry mismatch");
    }
    for (size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    if (other.count_ > 0) {
        if (count_ == 0) {
            min_ = other.min_;
            max_ = other.max_;
        } else {
            min_ = std::min(min_, other.min_);
            max_ = std::max(max_, other.max_);
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

std::string
Histogram::toString(const std::string &label) const
{
    std::ostringstream os;
    if (!label.empty())
        os << label << " ";
    os << "(n=" << count_ << ", mean=" << mean() << ")\n";
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        uint64_t lo = i * bucket_width_;
        uint64_t hi = lo + bucket_width_ - 1;
        double pct = 100.0 * static_cast<double>(buckets_[i]) /
            static_cast<double>(count_ == 0 ? 1 : count_);
        os << "  [" << lo << ".." << hi << "]: " << buckets_[i]
           << " (" << pct << "%)\n";
    }
    if (overflow_ > 0) {
        double pct = 100.0 * static_cast<double>(overflow_) /
            static_cast<double>(count_ == 0 ? 1 : count_);
        os << "  [>" << buckets_.size() * bucket_width_ - 1 << "]: "
           << overflow_ << " (" << pct << "%)\n";
    }
    return os.str();
}

} // namespace dsmem::stats
