#ifndef DSMEM_STATS_BARCHART_H
#define DSMEM_STATS_BARCHART_H

#include <cstdint>
#include <string>
#include <vector>

namespace dsmem::stats {

/**
 * ASCII stacked horizontal bar chart, used by the bench binaries to
 * render Figure-3/4-style execution-time breakdowns: one bar per
 * processor configuration, one glyph per stacked section.
 */
class BarChart
{
  public:
    /**
     * @param section_names  Legend entries, e.g. {"busy","sync",...}.
     * @param scale_max      Value mapped to full width (e.g. 100.0).
     * @param width          Bar width in characters.
     */
    BarChart(std::vector<std::string> section_names, double scale_max,
             uint32_t width = 60);

    /** Add one bar; `sections` must match the legend's size. */
    void addBar(const std::string &label,
                const std::vector<double> &sections);

    /** Render all bars with a legend and a scale line. */
    std::string toString() const;

    size_t numBars() const { return bars_.size(); }

  private:
    struct Bar {
        std::string label;
        std::vector<double> sections;
    };

    std::vector<std::string> section_names_;
    double scale_max_;
    uint32_t width_;
    std::vector<Bar> bars_;
};

/** Glyphs used for the stacked sections, cycled if more sections. */
inline constexpr char kBarGlyphs[] = {'#', '@', '=', '.', '%', '+'};

} // namespace dsmem::stats

#endif // DSMEM_STATS_BARCHART_H
