#ifndef DSMEM_STATS_TABLE_H
#define DSMEM_STATS_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace dsmem::stats {

/**
 * Column-aligned ASCII table used by the bench binaries to print the
 * paper's tables and figure series.
 *
 * Cells are strings; helpers format counts, rates (the paper's
 * "references per thousand instructions"), and percentages with the
 * same precision the paper uses.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a full row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Begin building a row cell by cell. */
    void beginRow();

    /** Append one cell to the row under construction. */
    void cell(const std::string &text);
    void cell(uint64_t value);
    void cell(int64_t value);
    void cell(double value, int precision = 1);

    /** Finish the row under construction (pads short rows). */
    void endRow();

    /** Number of completed data rows. */
    size_t numRows() const { return rows_.size(); }

    /** Access a completed cell (row-major). */
    const std::string &at(size_t row, size_t col) const;

    /** Render with a header rule and aligned columns. */
    std::string toString() const;

    // -- Formatting helpers shared across bench binaries --------------

    /** e.g. 12345 -> "12,345". */
    static std::string withCommas(uint64_t value);

    /** Fixed-precision decimal rendering. */
    static std::string fixed(double value, int precision = 1);

    /** "12.3%" style percentage rendering. */
    static std::string percent(double fraction, int precision = 1);

    /**
     * The paper's Table 1/2 style "count (rate)" cell: a count in
     * thousands with its per-thousand-instructions rate beneath it --
     * rendered inline here as "count (rate)".
     */
    static std::string countAndRate(uint64_t count, uint64_t busy_cycles,
                                    int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
    bool in_row_ = false;
};

} // namespace dsmem::stats

#endif // DSMEM_STATS_TABLE_H
