#include "stats/barchart.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dsmem::stats {

BarChart::BarChart(std::vector<std::string> section_names,
                   double scale_max, uint32_t width)
    : section_names_(std::move(section_names)),
      scale_max_(scale_max),
      width_(width)
{
    if (section_names_.empty())
        throw std::invalid_argument("BarChart needs >= 1 section");
    if (scale_max <= 0.0)
        throw std::invalid_argument("BarChart scale must be positive");
    if (width < 10)
        throw std::invalid_argument("BarChart width must be >= 10");
}

void
BarChart::addBar(const std::string &label,
                 const std::vector<double> &sections)
{
    if (sections.size() != section_names_.size())
        throw std::invalid_argument("BarChart section count mismatch");
    for (double v : sections)
        if (v < 0.0 || !std::isfinite(v))
            throw std::invalid_argument("BarChart sections must be "
                                        "finite and non-negative");
    bars_.push_back({label, sections});
}

std::string
BarChart::toString() const
{
    size_t label_width = 0;
    for (const Bar &bar : bars_)
        label_width = std::max(label_width, bar.label.size());

    std::ostringstream os;

    // Legend.
    os << "legend:";
    for (size_t s = 0; s < section_names_.size(); ++s) {
        os << "  " << kBarGlyphs[s % std::size(kBarGlyphs)] << "="
           << section_names_[s];
    }
    os << "   (full bar = " << scale_max_ << ")\n";

    for (const Bar &bar : bars_) {
        os << "  ";
        os.width(static_cast<std::streamsize>(label_width));
        os << std::left << bar.label;
        os << " |";

        double total = 0.0;
        size_t emitted = 0;
        for (size_t s = 0; s < bar.sections.size(); ++s) {
            total += bar.sections[s];
            // Cumulative rounding keeps the bar length proportional
            // to the running total regardless of per-section error.
            size_t target = static_cast<size_t>(
                std::llround(std::min(total, scale_max_) /
                             scale_max_ * width_));
            char glyph = kBarGlyphs[s % std::size(kBarGlyphs)];
            while (emitted < target) {
                os << glyph;
                ++emitted;
            }
        }
        while (emitted < width_) {
            os << ' ';
            ++emitted;
        }
        os << "| ";
        os.precision(1);
        os << std::fixed << total << "\n";
    }
    return os.str();
}

} // namespace dsmem::stats
