#ifndef DSMEM_STATS_HISTOGRAM_H
#define DSMEM_STATS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace dsmem::stats {

/**
 * Fixed-width bucketed histogram over non-negative integer samples.
 *
 * Used throughout the benches for the paper's distribution-style
 * claims (e.g. "90% of read misses are 20-30 instructions apart" in
 * Section 4.1.3). Samples beyond the last bucket accumulate in an
 * overflow bucket so that quantiles remain well defined.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket in sample units.
     * @param num_buckets  Number of regular buckets before overflow.
     */
    Histogram(uint64_t bucket_width, size_t num_buckets);

    /** Record one sample. */
    void add(uint64_t value) { add(value, 1); }

    /** Record a sample with a repeat count. */
    void add(uint64_t value, uint64_t count);

    /** Total number of recorded samples. */
    uint64_t count() const { return count_; }

    /** Sum of all recorded samples. */
    uint64_t sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest recorded sample; 0 when empty. */
    uint64_t min() const { return count_ == 0 ? 0 : min_; }

    /** Largest recorded sample; 0 when empty. */
    uint64_t max() const { return count_ == 0 ? 0 : max_; }

    /** Number of regular (non-overflow) buckets. */
    size_t numBuckets() const { return buckets_.size(); }

    /** Width of each regular bucket. */
    uint64_t bucketWidth() const { return bucket_width_; }

    /** Count in regular bucket @p idx. */
    uint64_t bucketCount(size_t idx) const { return buckets_.at(idx); }

    /** Count of samples past the last regular bucket. */
    uint64_t overflowCount() const { return overflow_; }

    /**
     * Fraction (0..1) of samples strictly above @p threshold.
     * Computed from buckets, so resolution is bucket-width granular:
     * a bucket counts as "above" when its low edge is > threshold.
     * Exact when @p threshold is a bucket boundary minus one.
     */
    double fractionAbove(uint64_t threshold) const;

    /** Fraction (0..1) of samples falling in [lo, hi] by bucket edges. */
    double fractionBetween(uint64_t lo, uint64_t hi) const;

    /**
     * Smallest bucket upper edge such that at least @p q (0..1) of the
     * samples fall at or below it. Returns max() for the overflow
     * region. 0 when empty.
     */
    uint64_t quantile(double q) const;

    /** Merge another histogram with identical geometry into this one. */
    void merge(const Histogram &other);

    /** Reset all samples. */
    void clear();

    /** Multi-line human-readable rendering (one line per bucket). */
    std::string toString(const std::string &label = "") const;

  private:
    uint64_t bucket_width_;
    std::vector<uint64_t> buckets_;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

} // namespace dsmem::stats

#endif // DSMEM_STATS_HISTOGRAM_H
