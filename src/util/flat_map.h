#ifndef DSMEM_UTIL_FLAT_MAP_H
#define DSMEM_UTIL_FLAT_MAP_H

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace dsmem::util {

/**
 * Open-addressed hash map for integral keys on simulator hot paths
 * (store-forwarding tables, directory state, cycle allocators).
 *
 * Linear probing over a power-of-two slot array, Fibonacci hashing,
 * and Knuth backward-shift deletion, so the table never accumulates
 * tombstones: erase restores exactly the state an insertion-only
 * history would have produced, and probe sequences stay short no
 * matter how many entries have come and gone.
 *
 * Values must be cheap to move; references returned by find() and
 * findOrInsert() are invalidated by any subsequent insert, erase, or
 * rehash (unlike node-based std::unordered_map — callers re-find
 * after mutating the table).
 */
template <typename K, typename V>
class FlatMap
{
  public:
    explicit FlatMap(size_t initial_capacity = 16)
    {
        size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return slots_.size(); }

    /** Pointer to the value for @p key, or nullptr. */
    V *find(K key)
    {
        size_t idx = probe(key);
        return slots_[idx].used ? &slots_[idx].value : nullptr;
    }

    const V *find(K key) const
    {
        size_t idx = probe(key);
        return slots_[idx].used ? &slots_[idx].value : nullptr;
    }

    /**
     * Value for @p key, default-constructed and inserted when absent
     * (operator[] semantics). May rehash.
     */
    V &findOrInsert(K key)
    {
        size_t idx = probe(key);
        if (slots_[idx].used)
            return slots_[idx].value;
        if ((size_ + 1) * 4 > capacity() * 3) { // load factor 3/4
            grow(capacity() * 2);
            idx = probe(key);
        }
        slots_[idx].used = true;
        slots_[idx].key = key;
        slots_[idx].value = V{};
        ++size_;
        return slots_[idx].value;
    }

    /** Insert or overwrite. May rehash. */
    void insert(K key, V value)
    {
        findOrInsert(key) = std::move(value);
    }

    /** Remove @p key (backward-shift, tombstone-free). */
    bool erase(K key)
    {
        size_t idx = probe(key);
        if (!slots_[idx].used)
            return false;
        eraseSlot(idx);
        return true;
    }

    /**
     * Keep only entries satisfying @p pred(key, value); rebuilds the
     * table, shrinking it when far under-occupied. Amortizes dead-entry
     * sweeps without per-erase shifting.
     */
    template <typename Pred>
    void retain(Pred pred)
    {
        std::vector<Slot> old = std::move(slots_);
        size_t live = 0;
        for (const Slot &s : old)
            if (s.used && pred(s.key, s.value))
                ++live;
        // Smallest power-of-two capacity keeping load <= 3/8, so the
        // sweep both shrinks bloated tables and leaves insert headroom.
        size_t cap = 16;
        while (cap * 3 < live * 8)
            cap <<= 1;
        slots_.assign(cap, Slot{});
        mask_ = cap - 1;
        size_ = 0;
        for (Slot &s : old) {
            if (!s.used || !pred(s.key, s.value))
                continue;
            size_t idx = probe(s.key);
            slots_[idx].used = true;
            slots_[idx].key = s.key;
            slots_[idx].value = std::move(s.value);
            ++size_;
        }
    }

    /** True when one more insert would trigger a grow. */
    bool nearCapacity() const { return (size_ + 1) * 4 > capacity() * 3; }

    void clear()
    {
        slots_.assign(slots_.size(), Slot{});
        size_ = 0;
    }

    /** Visit every (key, value) pair; order is unspecified. */
    template <typename Fn>
    void forEach(Fn fn) const
    {
        for (const Slot &s : slots_)
            if (s.used)
                fn(s.key, s.value);
    }

  private:
    struct Slot {
        K key{};
        V value{};
        bool used = false;
    };

    static size_t hashKey(K key)
    {
        // Fibonacci hashing over a splitmix-style mix: adjacent keys
        // (addresses, cycle numbers) scatter across the table.
        uint64_t x = static_cast<uint64_t>(key);
        x ^= x >> 33;
        x *= 0x9E3779B97F4A7C15ull;
        x ^= x >> 29;
        return static_cast<size_t>(x);
    }

    /** Slot holding @p key, or the empty slot where it would go. */
    size_t probe(K key) const
    {
        size_t idx = hashKey(key) & mask_;
        while (slots_[idx].used && slots_[idx].key != key)
            idx = (idx + 1) & mask_;
        return idx;
    }

    void grow(size_t new_cap)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_cap, Slot{});
        mask_ = new_cap - 1;
        size_ = 0;
        for (Slot &s : old) {
            if (!s.used)
                continue;
            size_t idx = probe(s.key);
            slots_[idx] = std::move(s);
            ++size_;
        }
    }

    /** Knuth Algorithm R: delete from a linear-probe table. */
    void eraseSlot(size_t idx)
    {
        slots_[idx].used = false;
        --size_;
        size_t hole = idx;
        size_t cur = idx;
        for (;;) {
            cur = (cur + 1) & mask_;
            if (!slots_[cur].used)
                return;
            size_t home = hashKey(slots_[cur].key) & mask_;
            // Shift cur into the hole iff its home position does not
            // lie cyclically within (hole, cur].
            bool between = hole <= cur
                ? (home > hole && home <= cur)
                : (home > hole || home <= cur);
            if (!between) {
                slots_[hole] = std::move(slots_[cur]);
                slots_[hole].used = true;
                slots_[cur].used = false;
                hole = cur;
            }
        }
    }

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    size_t size_ = 0;
};

} // namespace dsmem::util

#endif // DSMEM_UTIL_FLAT_MAP_H
