#ifndef DSMEM_UTIL_FAILPOINT_H
#define DSMEM_UTIL_FAILPOINT_H

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <string_view>
#include <system_error>
#include <thread>
#include <vector>

#include "util/errors.h"

namespace dsmem::util {

/**
 * Deterministic fault injection for the I/O and execution layers.
 *
 * Every interesting failure boundary (bundle open/rename/remove,
 * byte-sink drain, byte-source refill, phase-1/phase-2 job bodies,
 * journal appends) carries a *named site*:
 *
 *     util::failpoint("trace_store.save");
 *
 * A site does nothing until armed — the unarmed fast path is a single
 * relaxed atomic load of one global counter, so instrumented hot
 * paths cost nothing in production. Sites are armed either
 * programmatically (armFailpoint / disarmAllFailpoints, used by
 * tests) or via the environment at process start:
 *
 *     DSMEM_FAILPOINTS=site:mode[:arg][:trigger],...
 *
 * Modes:
 *   throw        throw util::IoError (a transient, retryable fault)
 *   ec           report a std::error_code at failpointEc() sites
 *                (throws IoError when hit via plain failpoint())
 *   short-write  at failpointShortWrite() sites: half the buffered
 *                block lands, then the stream fails (throws at
 *                non-sink sites)
 *   delay        sleep @p arg milliseconds, then continue (watchdog
 *                and contention testing); arg is required
 *   kill         raise SIGKILL — the process dies exactly as if an
 *                external `kill -9` landed on this protocol boundary
 *                (multi-process chaos testing; never catchable)
 *
 * Trigger (optional last field): "once" fires on the first hit then
 * disarms; an integer K fires on every Kth hit (K=1, the default,
 * fires on every hit).
 *
 * Examples:
 *   trace_store.save:throw:once        first save fails, rest succeed
 *   byte_io.refill:throw:3             every 3rd block read fails
 *   campaign.phase2:delay:50           every timing job sleeps 50 ms
 *   trace_store.rename:ec              every rename reports an error
 *
 * Everything is deterministic: firing depends only on the per-site
 * hit count, never on wall clock or randomness, so a failing campaign
 * replays identically.
 *
 * `DSMEM_FAILPOINTS=list` is the discovery mode: the process prints
 * every registered site (the catalog below) to stdout and exits,
 * so CI jobs and the chaos driver can enumerate sites instead of
 * hard-coding names that drift.
 */
enum class FailpointMode : uint8_t {
    THROW,
    ERROR_CODE,
    SHORT_WRITE,
    DELAY,
    KILL,
};

/** One entry of the static failpoint site catalog. */
struct FailpointSite {
    const char *name;  ///< e.g. "trace_store.save"
    const char *where; ///< one-line description of the boundary
};

/**
 * Every failpoint site compiled into the tree. tests/test_failpoint
 * greps the source for `failpoint*("...")` literals and fails when
 * this catalog and the code disagree, so the list cannot drift.
 * Sites reached through a variable (the svc framing layer passes the
 * site name through sendFrame/recvFrame) are covered by the literal
 * at their call site.
 */
inline constexpr FailpointSite kFailpointSites[] = {
    {"bundle.generate", "phase-1 trace generation body"},
    {"byte_io.drain", "ByteSink block flush to the OS"},
    {"byte_io.refill", "ByteSource block read from the OS"},
    {"campaign.phase1", "campaign phase-1 job body"},
    {"campaign.phase2", "campaign phase-2 cell body"},
    {"dram.dispatch", "banked DRAM request dispatch"},
    {"dslp.read", "live-point checkpoint load"},
    {"dslp.write", "live-point checkpoint save"},
    {"journal.append", "journal record append + fsync"},
    {"journal.open", "journal open / replay / truncate"},
    {"svc.accept", "coordinator accept of a worker connection"},
    {"svc.connect", "worker connect to the coordinator socket"},
    {"svc.coord.recv", "coordinator frame receive"},
    {"svc.coord.send", "coordinator frame send"},
    {"svc.serve.accept", "server accept of a campaign client"},
    {"svc.spawn", "coordinator fork/exec of a worker process"},
    {"svc.worker.recv", "worker frame receive"},
    {"svc.worker.send", "worker frame send"},
    {"trace_io.load", "bundle deserialization"},
    {"trace_io.save", "bundle serialization"},
    {"trace_store.migrate", "v1 bundle migration"},
    {"trace_store.open_read", "store bundle open-for-read"},
    {"trace_store.remove", "store bundle remove"},
    {"trace_store.rename", "store tmp -> final atomic rename"},
    {"trace_store.save", "store bundle save"},
};

/** True when @p site names an entry of kFailpointSites. */
inline bool
isKnownFailpointSite(std::string_view site)
{
    for (const FailpointSite &s : kFailpointSites)
        if (site == s.name)
            return true;
    return false;
}

/** Dump the site catalog, one "name\twhere" line per site. */
inline void
printFailpointSites(std::FILE *out)
{
    for (const FailpointSite &s : kFailpointSites)
        std::fprintf(out, "%s\t%s\n", s.name, s.where);
}

struct FailpointSpec {
    std::string site;
    FailpointMode mode = FailpointMode::THROW;
    uint32_t arg = 0;   ///< delay: milliseconds. Others: unused.
    uint32_t every = 1; ///< Fire on every Kth hit.
    bool once = false;  ///< Disarm after the first firing.
};

namespace fp_detail {

struct Entry {
    FailpointSpec spec;
    uint64_t hits = 0;  ///< Times the site was evaluated while armed.
    bool spent = false; ///< once-entry that already fired.
};

/**
 * The unarmed fast-path gate: number of live (armed, not spent)
 * entries. Constant-initialized, so checking it never races with
 * static construction.
 */
inline std::atomic<int> g_armed{0};

struct Registry {
    std::mutex mu;
    std::vector<Entry> entries;

    static Registry &instance()
    {
        static Registry r;
        return r;
    }
};

/** What a fired site should do, decided under the registry lock. */
struct Action {
    FailpointMode mode = FailpointMode::THROW;
    uint32_t arg = 0;
    bool fire = false;
};

inline Action
evaluate(const char *site)
{
    Registry &reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (Entry &e : reg.entries) {
        if (e.spent || e.spec.site != site)
            continue;
        ++e.hits;
        uint32_t every = e.spec.every == 0 ? 1 : e.spec.every;
        if (e.hits % every != 0)
            continue;
        if (e.spec.once) {
            e.spent = true;
            g_armed.fetch_sub(1, std::memory_order_relaxed);
        }
        return Action{e.spec.mode, e.spec.arg, true};
    }
    return Action{};
}

[[noreturn]] inline void
throwFault(const char *site)
{
    throw IoError(std::string("failpoint fired: ") + site);
}

/**
 * kill-mode firing: indistinguishable from an external `kill -9` at
 * this exact boundary. abort() is unreachable; it only satisfies
 * [[noreturn]] if SIGKILL were somehow blocked.
 */
[[noreturn]] inline void
killSelf()
{
    std::raise(SIGKILL);
    std::abort();
}

} // namespace fp_detail

/** True when any failpoint is armed (one relaxed load). */
inline bool
failpointsArmed()
{
    return fp_detail::g_armed.load(std::memory_order_relaxed) != 0;
}

/**
 * Generic site: throw (also for ec mode, which has no error_code
 * channel here) or delay. SHORT_WRITE entries are ignored at generic
 * sites — they only mean something to a sink.
 */
inline void
failpoint(const char *site)
{
    if (!failpointsArmed()) [[likely]]
        return;
    fp_detail::Action a = fp_detail::evaluate(site);
    if (!a.fire)
        return;
    switch (a.mode) {
      case FailpointMode::DELAY:
        std::this_thread::sleep_for(std::chrono::milliseconds(a.arg));
        return;
      case FailpointMode::SHORT_WRITE:
        return;
      case FailpointMode::KILL:
        fp_detail::killSelf();
      case FailpointMode::THROW:
      case FailpointMode::ERROR_CODE:
        fp_detail::throwFault(site);
    }
}

/**
 * Site that reports failure through a std::error_code (the
 * std::filesystem idiom). Returns true and sets @p ec when an ec-mode
 * entry fires; throw-mode entries still throw, delay still delays.
 */
inline bool
failpointEc(const char *site, std::error_code &ec)
{
    if (!failpointsArmed()) [[likely]]
        return false;
    fp_detail::Action a = fp_detail::evaluate(site);
    if (!a.fire)
        return false;
    switch (a.mode) {
      case FailpointMode::ERROR_CODE:
        ec = std::make_error_code(std::errc::io_error);
        return true;
      case FailpointMode::DELAY:
        std::this_thread::sleep_for(std::chrono::milliseconds(a.arg));
        return false;
      case FailpointMode::SHORT_WRITE:
        return false;
      case FailpointMode::KILL:
        fp_detail::killSelf();
      case FailpointMode::THROW:
        fp_detail::throwFault(site);
    }
    return false;
}

/**
 * Sink-drain site. Returns true when a short-write entry fires (the
 * caller writes a partial block and fails its stream); throw-mode
 * entries throw, delay delays.
 */
inline bool
failpointShortWrite(const char *site)
{
    if (!failpointsArmed()) [[likely]]
        return false;
    fp_detail::Action a = fp_detail::evaluate(site);
    if (!a.fire)
        return false;
    switch (a.mode) {
      case FailpointMode::SHORT_WRITE:
        return true;
      case FailpointMode::DELAY:
        std::this_thread::sleep_for(std::chrono::milliseconds(a.arg));
        return false;
      case FailpointMode::KILL:
        fp_detail::killSelf();
      case FailpointMode::THROW:
      case FailpointMode::ERROR_CODE:
        fp_detail::throwFault(site);
    }
    return false;
}

/** Arm one failpoint programmatically. */
inline void
armFailpoint(FailpointSpec spec)
{
    fp_detail::Registry &reg = fp_detail::Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.entries.push_back(fp_detail::Entry{std::move(spec), 0, false});
    fp_detail::g_armed.fetch_add(1, std::memory_order_relaxed);
}

/**
 * Parse one "site:mode[:arg][:trigger]" entry. Returns false (with a
 * diagnostic in @p err when non-null) on a malformed spec.
 */
inline bool
parseFailpointSpec(std::string_view text, FailpointSpec &out,
                   std::string *err = nullptr)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why + ": '" + std::string(text) + "'";
        return false;
    };

    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        size_t colon = text.find(':', start);
        fields.emplace_back(text.substr(
            start, colon == std::string_view::npos ? colon
                                                   : colon - start));
        if (colon == std::string_view::npos)
            break;
        start = colon + 1;
    }
    if (fields.size() < 2 || fields[0].empty())
        return fail("failpoint spec needs site:mode");

    FailpointSpec spec;
    spec.site = fields[0];
    const std::string &mode = fields[1];
    size_t next = 2;
    if (mode == "throw") {
        spec.mode = FailpointMode::THROW;
    } else if (mode == "ec" || mode == "error_code") {
        spec.mode = FailpointMode::ERROR_CODE;
    } else if (mode == "short-write") {
        spec.mode = FailpointMode::SHORT_WRITE;
    } else if (mode == "kill") {
        spec.mode = FailpointMode::KILL;
    } else if (mode == "delay") {
        spec.mode = FailpointMode::DELAY;
        if (fields.size() < 3)
            return fail("delay needs a millisecond arg");
        char *end = nullptr;
        unsigned long ms = std::strtoul(fields[2].c_str(), &end, 10);
        if (end == fields[2].c_str() || *end != '\0' || ms > 60000)
            return fail("bad delay milliseconds");
        spec.arg = static_cast<uint32_t>(ms);
        next = 3;
    } else {
        return fail("unknown failpoint mode");
    }

    if (next < fields.size()) {
        const std::string &trig = fields[next];
        if (trig == "once") {
            spec.once = true;
        } else {
            char *end = nullptr;
            unsigned long k = std::strtoul(trig.c_str(), &end, 10);
            if (end == trig.c_str() || *end != '\0' || k == 0 ||
                k > 1u << 20)
                return fail("bad failpoint trigger");
            spec.every = static_cast<uint32_t>(k);
        }
        ++next;
    }
    if (next != fields.size())
        return fail("trailing failpoint fields");

    out = std::move(spec);
    return true;
}

/**
 * Arm a comma-separated spec list (the DSMEM_FAILPOINTS grammar).
 * Returns false on the first malformed entry; entries before it stay
 * armed. With @p require_known (the env-load path), sites absent
 * from kFailpointSites are rejected — tests arming synthetic sites
 * programmatically pass false.
 */
inline bool
armFailpoints(std::string_view list, std::string *err = nullptr,
              bool require_known = false)
{
    size_t start = 0;
    while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string_view entry = list.substr(
            start,
            comma == std::string_view::npos ? comma : comma - start);
        if (!entry.empty()) {
            FailpointSpec spec;
            if (!parseFailpointSpec(entry, spec, err))
                return false;
            if (require_known && !isKnownFailpointSite(spec.site)) {
                if (err)
                    *err = "unknown failpoint site '" + spec.site +
                           "' (use DSMEM_FAILPOINTS=list)";
                return false;
            }
            armFailpoint(std::move(spec));
        }
        if (comma == std::string_view::npos)
            break;
        start = comma + 1;
    }
    return true;
}

/** Disarm every entry for @p site (spent once-entries included). */
inline void
disarmFailpoint(std::string_view site)
{
    fp_detail::Registry &reg = fp_detail::Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.entries.begin();
    while (it != reg.entries.end()) {
        if (it->spec.site == site) {
            if (!it->spent)
                fp_detail::g_armed.fetch_sub(
                    1, std::memory_order_relaxed);
            it = reg.entries.erase(it);
        } else {
            ++it;
        }
    }
}

/** Remove every failpoint (test teardown). */
inline void
disarmAllFailpoints()
{
    fp_detail::Registry &reg = fp_detail::Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const fp_detail::Entry &e : reg.entries)
        if (!e.spent)
            fp_detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
    reg.entries.clear();
}

/** Armed-time hit count across all entries for @p site. */
inline uint64_t
failpointHits(std::string_view site)
{
    fp_detail::Registry &reg = fp_detail::Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    uint64_t hits = 0;
    for (const fp_detail::Entry &e : reg.entries)
        if (e.spec.site == site)
            hits += e.hits;
    return hits;
}

namespace fp_detail {

/**
 * Environment activation: DSMEM_FAILPOINTS is parsed during static
 * initialization of any binary that links an instrumented TU, so
 * env-armed failpoints are live before main() runs.
 */
inline const bool g_env_loaded = [] {
    const char *env = std::getenv("DSMEM_FAILPOINTS");
    if (env != nullptr && *env != '\0') {
        if (std::string_view(env) == "list") {
            printFailpointSites(stdout);
            std::exit(0);
        }
        std::string err;
        if (!armFailpoints(env, &err, /*require_known=*/true))
            std::fprintf(stderr, "DSMEM_FAILPOINTS: %s\n",
                         err.c_str());
    }
    return true;
}();

} // namespace fp_detail

} // namespace dsmem::util

#endif // DSMEM_UTIL_FAILPOINT_H
