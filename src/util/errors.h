#ifndef DSMEM_UTIL_ERRORS_H
#define DSMEM_UTIL_ERRORS_H

#include <stdexcept>
#include <string>

namespace dsmem::util {

/**
 * Typed failure taxonomy shared by the trace/bundle I/O stack and the
 * campaign runner. The split matters because the runner's retry
 * policy keys on it:
 *
 *  - IoError: the environment failed us (disk, stream, injected
 *    fault). Transient by definition — retrying the operation may
 *    succeed, so the campaign retries these with capped backoff.
 *  - FormatError: the *bytes* are wrong (bad magic, checksum
 *    mismatch, implausible section size). Permanent — retrying
 *    re-reads the same bytes, so the store quarantines the file and
 *    regenerates instead.
 *
 * Both derive from std::runtime_error so pre-existing catch sites
 * (and tests asserting std::runtime_error) keep working unchanged.
 */
class IoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Malformed input: deterministic, retry cannot help. */
class FormatError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Input ended mid-field (a FormatError with a sharper name). */
class TruncatedError : public FormatError
{
  public:
    using FormatError::FormatError;
};

} // namespace dsmem::util

#endif // DSMEM_UTIL_ERRORS_H
