#ifndef DSMEM_UTIL_DARY_HEAP_H
#define DSMEM_UTIL_DARY_HEAP_H

#include <cstdint>
#include <vector>

namespace dsmem::util {

/**
 * Fixed-arity min-heap of uint64 keys over a flat array.
 *
 * Replaces std::priority_queue on paths with a known small bound
 * (the free-window slot pool holds exactly `window` completion
 * times): a d-ary layout trades deeper trees for d-way sift-down
 * steps that stay within one or two cache lines, and reserving the
 * bound up front removes every reallocation from the hot loop.
 *
 * Ordering is by key value only, so any arity pops the same value
 * sequence as std::priority_queue<.., std::greater<>> (ties carry no
 * payload to distinguish).
 */
template <unsigned D = 4>
class DaryMinHeap
{
    static_assert(D >= 2, "heap arity must be at least 2");

  public:
    DaryMinHeap() = default;
    explicit DaryMinHeap(size_t capacity) { data_.reserve(capacity); }

    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    void reserve(size_t capacity) { data_.reserve(capacity); }

    uint64_t top() const { return data_.front(); }

    void push(uint64_t key)
    {
        data_.push_back(key);
        size_t i = data_.size() - 1;
        while (i > 0) {
            size_t parent = (i - 1) / D;
            if (data_[parent] <= data_[i])
                break;
            std::swap(data_[parent], data_[i]);
            i = parent;
        }
    }

    void pop()
    {
        data_.front() = data_.back();
        data_.pop_back();
        if (data_.empty())
            return;
        size_t i = 0;
        const size_t n = data_.size();
        for (;;) {
            size_t first = i * D + 1;
            if (first >= n)
                break;
            size_t last = first + D < n ? first + D : n;
            size_t best = first;
            for (size_t c = first + 1; c < last; ++c)
                if (data_[c] < data_[best])
                    best = c;
            if (data_[i] <= data_[best])
                break;
            std::swap(data_[i], data_[best]);
            i = best;
        }
    }

    void clear() { data_.clear(); }

  private:
    std::vector<uint64_t> data_;
};

} // namespace dsmem::util

#endif // DSMEM_UTIL_DARY_HEAP_H
