#ifndef DSMEM_UTIL_BYTE_IO_H
#define DSMEM_UTIL_BYTE_IO_H

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "util/errors.h"
#include "util/failpoint.h"

namespace dsmem::util {

/** FNV-1a initial state / multiplier (shared by every checksummer). */
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** One FNV-1a step over @p n bytes starting from state @p h. */
inline uint64_t
fnv1aUpdate(uint64_t h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** ZigZag mapping so small signed deltas varint-encode in one byte. */
inline constexpr uint32_t
zigzag32(uint32_t v)
{
    // Interpret as signed two's complement without UB.
    return (v << 1) ^ (0u - (v >> 31));
}

inline constexpr uint32_t
unzigzag32(uint32_t z)
{
    return (z >> 1) ^ (0u - (z & 1u));
}

/**
 * Streaming FNV-1a state with two folding granularities.
 *
 * BYTES is classic FNV-1a (one xor-multiply per byte) and matches the
 * checksum the v1 bundle format committed to. Its multiply chain is
 * serial, so it tops out around 1.4 ns/byte — which is why the v2
 * bundle format instead folds the stream as little-endian 64-bit
 * words (WORDS), one xor-multiply per 8 bytes, with the final partial
 * word zero-extended. Same primitive, an order of magnitude cheaper,
 * still catches flips, truncations, and reorderings.
 */
class FnvState
{
  public:
    enum class Fold : uint8_t { BYTES, WORDS };

    void begin(Fold fold)
    {
        hash_ = kFnvOffset;
        pend_ = 0;
        pend_len_ = 0;
        fold_ = fold;
    }

    void update(const void *data, size_t n)
    {
        if (fold_ == Fold::BYTES) {
            hash_ = fnv1aUpdate(hash_, data, n);
            return;
        }
        const auto *p = static_cast<const unsigned char *>(data);
        while (pend_len_ != 0 && n > 0) {
            pend_ |= static_cast<uint64_t>(*p++) << (8 * pend_len_);
            --n;
            if (++pend_len_ == 8) {
                hash_ = (hash_ ^ pend_) * kFnvPrime;
                pend_ = 0;
                pend_len_ = 0;
            }
        }
        while (n >= 8) {
            uint64_t w;
            std::memcpy(&w, p, 8);
            hash_ = (hash_ ^ w) * kFnvPrime;
            p += 8;
            n -= 8;
        }
        while (n > 0) {
            pend_ |= static_cast<uint64_t>(*p++) << (8 * pend_len_++);
            --n;
        }
    }

    /** Current digest; folds a zero-extended partial tail word. */
    uint64_t value() const
    {
        if (fold_ == Fold::WORDS && pend_len_ != 0)
            return (hash_ ^ pend_) * kFnvPrime;
        return hash_;
    }

  private:
    uint64_t hash_ = kFnvOffset;
    uint64_t pend_ = 0;
    unsigned pend_len_ = 0;
    Fold fold_ = Fold::BYTES;
};

/**
 * Block-buffered binary writer over a std::ostream.
 *
 * Serialization hot paths (trace and bundle I/O) append millions of
 * small fields; issuing one ostream::write per field costs a virtual
 * dispatch plus sentry locking each time. The sink batches everything
 * into one block and optionally folds every byte into a streaming
 * FNV-1a state, so whole-payload checksums never require buffering
 * the payload.
 *
 * Errors surface as std::runtime_error on flush (and destruction
 * flushes, swallowing errors — call flush() explicitly on paths that
 * must detect them).
 */
class ByteSink
{
  public:
    explicit ByteSink(std::ostream &os, size_t block_bytes = 1u << 16)
        : os_(&os), buf_(block_bytes)
    {
    }

    ByteSink(const ByteSink &) = delete;
    ByteSink &operator=(const ByteSink &) = delete;

    ~ByteSink()
    {
        try {
            flush();
        } catch (...) {
            // Destructor flush is best-effort.
        }
    }

    /** Start (or restart) checksumming every byte written from now on. */
    void beginHash(FnvState::Fold fold = FnvState::Fold::BYTES)
    {
        fnv_.begin(fold);
        hashing_ = true;
    }

    /** FNV-1a over everything written since beginHash(). */
    uint64_t hashValue() const { return fnv_.value(); }

    void put(const void *data, size_t n)
    {
        if (hashing_)
            fnv_.update(data, n);
        const char *p = static_cast<const char *>(data);
        while (n > 0) {
            if (pos_ == buf_.size())
                drain();
            size_t take = buf_.size() - pos_;
            if (take > n)
                take = n;
            std::memcpy(buf_.data() + pos_, p, take);
            pos_ += take;
            p += take;
            n -= take;
        }
    }

    void putByte(uint8_t b) { put(&b, 1); }

    void putU32(uint32_t v) { put(&v, 4); }

    void putU64(uint64_t v) { put(&v, 8); }

    /** LEB128: 7 value bits per byte, high bit = continuation. */
    void putVarint(uint64_t v)
    {
        uint8_t tmp[10];
        size_t n = 0;
        while (v >= 0x80) {
            tmp[n++] = static_cast<uint8_t>(v) | 0x80;
            v >>= 7;
        }
        tmp[n++] = static_cast<uint8_t>(v);
        put(tmp, n);
    }

    /** Write out any buffered bytes; throws IoError on failure. */
    void flush()
    {
        drain();
        if (!*os_)
            throw IoError("byte sink write failed");
    }

  private:
    void drain()
    {
        if (pos_ > 0) {
            size_t n = pos_;
            pos_ = 0;
            // Injected short write: half the block lands, then the
            // stream fails — the torn-file shape a full disk or a
            // kill mid-write produces.
            if (failpointsArmed() &&
                failpointShortWrite("byte_io.drain")) [[unlikely]] {
                os_->write(buf_.data(),
                           static_cast<std::streamsize>(n / 2));
                os_->setstate(std::ios::failbit);
                return;
            }
            os_->write(buf_.data(), static_cast<std::streamsize>(n));
        }
    }

    std::ostream *os_;
    std::vector<char> buf_;
    size_t pos_ = 0;
    FnvState fnv_;
    bool hashing_ = false;
};

/**
 * Block-buffered binary reader over a std::istream — the read-side
 * twin of ByteSink. Short reads (truncated files) throw immediately,
 * so decoders never consume garbage.
 *
 * Checksumming is lazy: consumed-but-unhashed buffer spans are folded
 * in bulk when the buffer refills or when hashValue()/consumed() is
 * queried, so the per-field read paths (readByte, readVarint) carry
 * no hashing work at all. readVarint additionally decodes straight
 * from the buffer when enough bytes are resident, which is the common
 * case for the varint-dense v2 trace sections.
 */
class ByteSource
{
  public:
    explicit ByteSource(std::istream &is, size_t block_bytes = 1u << 16)
        : is_(&is), buf_(block_bytes)
    {
    }

    ByteSource(const ByteSource &) = delete;
    ByteSource &operator=(const ByteSource &) = delete;

    /** Start checksumming every byte consumed from now on. */
    void beginHash(FnvState::Fold fold = FnvState::Fold::BYTES)
    {
        fnv_.begin(fold);
        consumed_ = 0;
        hmark_ = pos_;
        hashing_ = true;
    }

    /** FNV-1a over everything consumed since beginHash(). */
    uint64_t hashValue() const
    {
        syncHash();
        return fnv_.value();
    }

    /** Bytes consumed since beginHash(). */
    uint64_t consumed() const
    {
        syncHash();
        return consumed_;
    }

    void read(void *data, size_t n)
    {
        char *p = static_cast<char *>(data);
        while (n > 0) {
            if (pos_ == end_)
                refill();
            size_t take = end_ - pos_;
            if (take > n)
                take = n;
            std::memcpy(p, buf_.data() + pos_, take);
            pos_ += take;
            p += take;
            n -= take;
        }
    }

    uint8_t readByte()
    {
        if (pos_ == end_)
            refill();
        return static_cast<uint8_t>(buf_[pos_++]);
    }

    uint32_t readU32()
    {
        uint32_t v;
        read(&v, 4);
        return v;
    }

    uint64_t readU64()
    {
        uint64_t v;
        read(&v, 8);
        return v;
    }

    /** LEB128 decode; rejects encodings longer than 64 bits carry. */
    uint64_t readVarint()
    {
        if (pos_ < end_) [[likely]] {
            uint8_t b = static_cast<uint8_t>(buf_[pos_]);
            if (b < 0x80) {
                ++pos_;
                return b;
            }
            if (end_ - pos_ >= kMaxVarintBytes)
                return readVarintBuffered();
        }
        return readVarintSlow();
    }

    /** Varint that must fit 32 bits (the trace field width). */
    uint32_t readVarint32()
    {
        uint64_t v = readVarint();
        if (v > UINT32_MAX)
            throw FormatError("malformed varint");
        return static_cast<uint32_t>(v);
    }

    /**
     * Upper bound on the bytes still readable (buffered plus whatever
     * the underlying stream holds), or UINT64_MAX when the stream is
     * not seekable. Decoders check length prefixes against this
     * before reserving, so a corrupt count can never drive an
     * unbounded allocation.
     */
    uint64_t remainingBound()
    {
        uint64_t buffered = end_ - pos_;
        // Once refill() drains the stream, the final short read left
        // eofbit|failbit set and tellg() reports -1 — but nothing
        // beyond the buffer is obtainable, so `buffered` is the exact
        // bound. Treating this as "unknowable" would disable the
        // stream-size check right when a small (fully buffered)
        // corrupt input needs it most.
        if (!is_->good())
            return buffered;
        std::streampos cur = is_->tellg();
        if (cur == std::streampos(-1))
            return UINT64_MAX;
        is_->seekg(0, std::ios::end);
        std::streampos end = is_->tellg();
        is_->seekg(cur);
        if (end == std::streampos(-1) || !*is_ || end < cur)
            return UINT64_MAX;
        return buffered + static_cast<uint64_t>(end - cur);
    }

    /** True once the underlying stream is exhausted AND the buffer is. */
    bool atEof()
    {
        if (pos_ != end_)
            return false;
        int c = is_->peek();
        return c == std::char_traits<char>::eof();
    }

  private:
    static constexpr size_t kMaxVarintBytes = 10;

    /** Fold the consumed-but-unhashed buffer span into the digest. */
    void syncHash() const
    {
        if (!hashing_ || hmark_ == pos_)
            return;
        fnv_.update(buf_.data() + hmark_, pos_ - hmark_);
        consumed_ += pos_ - hmark_;
        hmark_ = pos_;
    }

    void refill()
    {
        syncHash();
        if (failpointsArmed()) [[unlikely]]
            failpoint("byte_io.refill");
        is_->read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        pos_ = 0;
        hmark_ = 0;
        end_ = static_cast<size_t>(is_->gcount());
        if (end_ == 0)
            throw TruncatedError("byte source truncated");
    }

    /** Multi-byte decode with all bytes known resident. */
    uint64_t readVarintBuffered()
    {
        const auto *p = reinterpret_cast<const uint8_t *>(buf_.data()) + pos_;
        uint64_t v = p[0] & 0x7F;
        unsigned shift = 7;
        size_t i = 1;
        uint8_t b;
        do {
            b = p[i++];
            v |= static_cast<uint64_t>(b & 0x7F) << shift;
            shift += 7;
        } while ((b & 0x80) != 0 && shift < 70);
        // The 10th byte must terminate and may only carry the final
        // value bit.
        if ((b & 0x80) != 0 || (shift == 70 && b > 1))
            throw FormatError("malformed varint");
        pos_ += i;
        return v;
    }

    /** Byte-at-a-time decode across a buffer boundary. */
    uint64_t readVarintSlow()
    {
        uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            uint8_t b = readByte();
            v |= static_cast<uint64_t>(b & 0x7F) << shift;
            if ((b & 0x80) == 0) {
                if (shift == 63 && b > 1)
                    throw FormatError("malformed varint");
                return v;
            }
        }
        throw FormatError("malformed varint");
    }

    std::istream *is_;
    std::vector<char> buf_;
    size_t pos_ = 0;
    size_t end_ = 0;
    // Lazy checksum state: buffer offset of the first unhashed byte,
    // mutated from const accessors.
    mutable size_t hmark_ = 0;
    mutable FnvState fnv_;
    mutable uint64_t consumed_ = 0;
    bool hashing_ = false;
};

} // namespace dsmem::util

#endif // DSMEM_UTIL_BYTE_IO_H
