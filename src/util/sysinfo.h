#ifndef DSMEM_UTIL_SYSINFO_H
#define DSMEM_UTIL_SYSINFO_H

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

// ------------------------------------------------------------------
// Host introspection shared by the benches (JSON headers, regime
// sizing) and the streaming-executor policy (sim/stream_exec.h):
// CPU model string, cache sizes, core count, and the process's peak
// resident set. Header-only, like the rest of util/.
// ------------------------------------------------------------------

namespace dsmem::util {

/** "model name" line from /proc/cpuinfo; "unknown" elsewhere. */
inline std::string
hostCpuModel()
{
    std::ifstream is("/proc/cpuinfo");
    std::string line;
    while (std::getline(is, line)) {
        if (line.compare(0, 10, "model name") != 0)
            continue;
        size_t colon = line.find(':');
        if (colon == std::string::npos)
            break;
        size_t begin = line.find_first_not_of(" \t", colon + 1);
        if (begin == std::string::npos)
            break;
        return line.substr(begin);
    }
    return "unknown";
}

/**
 * Size in bytes of cpu0's level-@p level data/unified cache from
 * sysfs; 0 when undetectable (non-Linux, masked sysfs). Recorded in
 * bench JSON headers so a committed baseline's regime ratios can be
 * read against the machine's cache hierarchy, and used by the
 * streaming-executor policy to derive its residency threshold.
 */
inline uint64_t
hostCacheBytes(int level)
{
    for (int idx = 0; idx < 16; ++idx) {
        std::string base = "/sys/devices/system/cpu/cpu0/cache/index" +
            std::to_string(idx) + "/";
        int l = 0;
        if (!(std::ifstream(base + "level") >> l) || l != level)
            continue;
        std::string type;
        if (std::ifstream(base + "type") >> type &&
            type == "Instruction")
            continue;
        std::string size;
        if (!(std::ifstream(base + "size") >> size) || size.empty())
            continue;
        char *end = nullptr;
        uint64_t bytes = std::strtoull(size.c_str(), &end, 10);
        if (end == size.c_str())
            continue;
        if (*end == 'K')
            bytes <<= 10;
        else if (*end == 'M')
            bytes <<= 20;
        else if (*end == 'G')
            bytes <<= 30;
        return bytes;
    }
    return 0;
}

/** Hardware thread count; at least 1. */
inline unsigned
hostCores()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

/**
 * Peak resident set size of this process in bytes (getrusage
 * ru_maxrss); 0 where unavailable. A high-water mark: it never
 * decreases, so comparative measurements must come from separate
 * processes (as bench_hotloop --stream-exec and the service workers
 * do).
 */
inline uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<uint64_t>(ru.ru_maxrss); // bytes on macOS
#else
    return static_cast<uint64_t>(ru.ru_maxrss) << 10; // KiB on Linux
#endif
#else
    return 0;
#endif
}

} // namespace dsmem::util

#endif // DSMEM_UTIL_SYSINFO_H
