#ifndef DSMEM_UTIL_SIMD_H
#define DSMEM_UTIL_SIMD_H

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

// ------------------------------------------------------------------
// Portable uint64 SIMD wrapper for the struct-of-lanes sweep executor.
//
// The instruction set is selected at configure time: the SIMD
// translation unit (sol_executor_simd.cc) is compiled with
// DSMEM_SIMD_TU_AVX2 (and -mavx2) when the toolchain supports it, or
// picks up NEON for free on AArch64; every other translation unit
// that includes this header sees only the scalar batch type, so no
// vector instruction can leak into code that must run on any host.
//
// Cycle counts never approach 2^63, so the AVX2 signed 64-bit compare
// implements an unsigned max exactly.
// ------------------------------------------------------------------

#if defined(DSMEM_SIMD_TU_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#define DSMEM_SIMD_ISA_AVX2 1
#elif defined(DSMEM_SIMD_TU_NEON) && defined(__ARM_NEON)
#include <arm_neon.h>
#define DSMEM_SIMD_ISA_NEON 1
#endif

namespace dsmem::util::simd {

/**
 * Scalar batch of 4 lanes: plain arrays and loops, the semantics the
 * vector types must match bit for bit. Also the forced-scalar
 * fallback path (`--simd=scalar`, DSMEM_SIMD=scalar), kept branch-free
 * so the compiler may still autovectorize it where profitable.
 */
struct U64x4Scalar {
    static constexpr size_t kWidth = 4;
    uint64_t v[4];

    static U64x4Scalar load(const uint64_t *p)
    {
        return {p[0], p[1], p[2], p[3]};
    }
    void store(uint64_t *p) const
    {
        p[0] = v[0];
        p[1] = v[1];
        p[2] = v[2];
        p[3] = v[3];
    }
    static U64x4Scalar splat(uint64_t x) { return {x, x, x, x}; }

    friend U64x4Scalar max64(U64x4Scalar a, U64x4Scalar b)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
        return r;
    }
    friend U64x4Scalar add64(U64x4Scalar a, U64x4Scalar b)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = a.v[i] + b.v[i];
        return r;
    }
    friend U64x4Scalar sub64(U64x4Scalar a, U64x4Scalar b)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = a.v[i] - b.v[i];
        return r;
    }
    /** All-ones where a > b, else zero (unsigned compare). */
    friend U64x4Scalar gt64(U64x4Scalar a, U64x4Scalar b)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = a.v[i] > b.v[i] ? ~uint64_t{0} : 0;
        return r;
    }
    /** Per-bit select: mask ? a : b. */
    friend U64x4Scalar blend64(U64x4Scalar mask, U64x4Scalar a,
                               U64x4Scalar b)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = (a.v[i] & mask.v[i]) | (b.v[i] & ~mask.v[i]);
        return r;
    }
    friend U64x4Scalar and64(U64x4Scalar a, U64x4Scalar b)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = a.v[i] & b.v[i];
        return r;
    }
    /** x & ~mask — selects where the mask is clear. */
    friend U64x4Scalar andnot64(U64x4Scalar mask, U64x4Scalar x)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = x.v[i] & ~mask.v[i];
        return r;
    }
    /** min(x, 1) per lane — the busy-slot clamp of the attribution. */
    friend U64x4Scalar minOne64(U64x4Scalar a)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = a.v[i] < 1 ? a.v[i] : 1;
        return r;
    }
    /** base[idx] per lane; every index must be in bounds. */
    friend U64x4Scalar gather64(const uint64_t *base, U64x4Scalar idx)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = base[idx.v[i]];
        return r;
    }
    /** Product of the low 32 bits per lane (exact for values < 2^32). */
    friend U64x4Scalar mulLo32(U64x4Scalar a, U64x4Scalar b)
    {
        U64x4Scalar r;
        for (size_t i = 0; i < 4; ++i)
            r.v[i] = static_cast<uint64_t>(
                         static_cast<uint32_t>(a.v[i])) *
                     static_cast<uint32_t>(b.v[i]);
        return r;
    }
};

#if defined(DSMEM_SIMD_ISA_AVX2)

/** AVX2 batch of 4 u64 lanes. */
struct U64x4Avx2 {
    static constexpr size_t kWidth = 4;
    __m256i v;

    static U64x4Avx2 load(const uint64_t *p)
    {
        return {_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p))};
    }
    void store(uint64_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
    static U64x4Avx2 splat(uint64_t x)
    {
        return {_mm256_set1_epi64x(static_cast<long long>(x))};
    }

    friend U64x4Avx2 gt64(U64x4Avx2 a, U64x4Avx2 b)
    {
        // Signed compare is exact for cycle counts (< 2^63).
        return {_mm256_cmpgt_epi64(a.v, b.v)};
    }
    friend U64x4Avx2 blend64(U64x4Avx2 mask, U64x4Avx2 a, U64x4Avx2 b)
    {
        return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
    }
    friend U64x4Avx2 max64(U64x4Avx2 a, U64x4Avx2 b)
    {
        return blend64(gt64(a, b), a, b);
    }
    friend U64x4Avx2 add64(U64x4Avx2 a, U64x4Avx2 b)
    {
        return {_mm256_add_epi64(a.v, b.v)};
    }
    friend U64x4Avx2 sub64(U64x4Avx2 a, U64x4Avx2 b)
    {
        return {_mm256_sub_epi64(a.v, b.v)};
    }
    friend U64x4Avx2 and64(U64x4Avx2 a, U64x4Avx2 b)
    {
        return {_mm256_and_si256(a.v, b.v)};
    }
    friend U64x4Avx2 andnot64(U64x4Avx2 mask, U64x4Avx2 x)
    {
        return {_mm256_andnot_si256(mask.v, x.v)};
    }
    friend U64x4Avx2 minOne64(U64x4Avx2 a)
    {
        U64x4Avx2 one = splat(1);
        return blend64(gt64(a, one), one, a);
    }
    friend U64x4Avx2 gather64(const uint64_t *base, U64x4Avx2 idx)
    {
        return {_mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(base), idx.v, 8)};
    }
    friend U64x4Avx2 mulLo32(U64x4Avx2 a, U64x4Avx2 b)
    {
        return {_mm256_mul_epu32(a.v, b.v)};
    }
};

using U64Batch = U64x4Avx2;
inline constexpr const char *kIsaName = "avx2";

#elif defined(DSMEM_SIMD_ISA_NEON)

/** NEON batch: 4 u64 lanes as a pair of 128-bit registers. */
struct U64x4Neon {
    static constexpr size_t kWidth = 4;
    uint64x2_t lo, hi;

    static U64x4Neon load(const uint64_t *p)
    {
        return {vld1q_u64(p), vld1q_u64(p + 2)};
    }
    void store(uint64_t *p) const
    {
        vst1q_u64(p, lo);
        vst1q_u64(p + 2, hi);
    }
    static U64x4Neon splat(uint64_t x)
    {
        return {vdupq_n_u64(x), vdupq_n_u64(x)};
    }

    friend U64x4Neon gt64(U64x4Neon a, U64x4Neon b)
    {
        return {vreinterpretq_u64_u64(vcgtq_u64(a.lo, b.lo)),
                vreinterpretq_u64_u64(vcgtq_u64(a.hi, b.hi))};
    }
    friend U64x4Neon blend64(U64x4Neon mask, U64x4Neon a, U64x4Neon b)
    {
        return {vbslq_u64(mask.lo, a.lo, b.lo),
                vbslq_u64(mask.hi, a.hi, b.hi)};
    }
    friend U64x4Neon max64(U64x4Neon a, U64x4Neon b)
    {
        return blend64(gt64(a, b), a, b);
    }
    friend U64x4Neon add64(U64x4Neon a, U64x4Neon b)
    {
        return {vaddq_u64(a.lo, b.lo), vaddq_u64(a.hi, b.hi)};
    }
    friend U64x4Neon sub64(U64x4Neon a, U64x4Neon b)
    {
        return {vsubq_u64(a.lo, b.lo), vsubq_u64(a.hi, b.hi)};
    }
    friend U64x4Neon and64(U64x4Neon a, U64x4Neon b)
    {
        return {vandq_u64(a.lo, b.lo), vandq_u64(a.hi, b.hi)};
    }
    friend U64x4Neon andnot64(U64x4Neon mask, U64x4Neon x)
    {
        return {vbicq_u64(x.lo, mask.lo), vbicq_u64(x.hi, mask.hi)};
    }
    friend U64x4Neon minOne64(U64x4Neon a)
    {
        U64x4Neon one = splat(1);
        return blend64(gt64(a, one), one, a);
    }
    friend U64x4Neon gather64(const uint64_t *base, U64x4Neon idx)
    {
        return {uint64x2_t{base[vgetq_lane_u64(idx.lo, 0)],
                           base[vgetq_lane_u64(idx.lo, 1)]},
                uint64x2_t{base[vgetq_lane_u64(idx.hi, 0)],
                           base[vgetq_lane_u64(idx.hi, 1)]}};
    }
    friend U64x4Neon mulLo32(U64x4Neon a, U64x4Neon b)
    {
        const uint64x2_t m = vdupq_n_u64(0xffffffffu);
        uint64x2_t al = vandq_u64(a.lo, m), bl = vandq_u64(b.lo, m);
        uint64x2_t ah = vandq_u64(a.hi, m), bh = vandq_u64(b.hi, m);
        return {uint64x2_t{vgetq_lane_u64(al, 0) * vgetq_lane_u64(bl, 0),
                           vgetq_lane_u64(al, 1) * vgetq_lane_u64(bl, 1)},
                uint64x2_t{vgetq_lane_u64(ah, 0) * vgetq_lane_u64(bh, 0),
                           vgetq_lane_u64(ah, 1) * vgetq_lane_u64(bh, 1)}};
    }
};

using U64Batch = U64x4Neon;
inline constexpr const char *kIsaName = "neon";

#else

using U64Batch = U64x4Scalar;
inline constexpr const char *kIsaName = "scalar";

#endif

/** Lane count every struct-of-lanes array is padded to. */
inline constexpr size_t kBatchWidth = U64x4Scalar::kWidth;

/** Hint a read of the cache line holding @p p (no-op if the compiler
 *  has no prefetch builtin). */
inline void prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0 /* read */, 0 /* streaming */);
#else
    (void)p;
#endif
}

// ------------------------------------------------------------------
// Runtime policy: the configure-time ISA can be overridden down to
// the grouped-scalar path (CI's forced-scalar leg, --simd=scalar).
// ------------------------------------------------------------------

namespace detail {
inline bool &forceScalarFlag()
{
    static bool force = [] {
        const char *env = std::getenv("DSMEM_SIMD");
        return env != nullptr && std::strcmp(env, "scalar") == 0;
    }();
    return force;
}
} // namespace detail

/** True when SIMD is disabled at runtime (env or setForceScalar). */
inline bool forceScalar() { return detail::forceScalarFlag(); }

/** Force (or re-enable) the scalar struct-of-lanes path at runtime. */
inline void setForceScalar(bool force)
{
    detail::forceScalarFlag() = force;
}

} // namespace dsmem::util::simd

#endif // DSMEM_UTIL_SIMD_H
