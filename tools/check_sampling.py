#!/usr/bin/env python3
"""Sampling smoke check: sampled campaign estimates vs the exact run.

Usage:
    check_sampling.py EXACT.json SAMPLED.json [--min-sampled N]

Both inputs are campaign JSON exports of the SAME declarations over
the SAME traces — one run without a sampling plan, one with. For
every sampled row (a run record carrying a "sampling" block) the
exact run's cycle count must fall inside the estimate's 95%
confidence interval:

    |exact_cycles - est_cycles| <= ci95 * n

where n (the trace length the estimate was scaled to) is recovered as
est_cycles / cpi_mean — the export carries CPI-domain statistics, not
the raw trace length. Rows without a "sampling" block (non-DS specs,
or traces too short for two windows) are exact by construction and
only counted.

The check is statistical but NOT flaky: traces, plans, and offsets
are all seeded, so the sampled run is bit-reproducible and a failure
here means the estimator or the functional warm-up regressed.

Exit codes: 0 ok, 1 an exact mean fell outside its CI or too few
rows sampled, 2 usage / file mismatch.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_sampling: {msg}", file=sys.stderr)
    sys.exit(2)


def load_doc(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def runs_by_cell(doc):
    out = {}
    for r in doc.get("runs", []):
        key = (r["app"], r["spec"])
        if key in out:
            fail(f"duplicate run record for {key}")
        out[key] = r
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("exact")
    parser.add_argument("sampled")
    parser.add_argument("--min-sampled", type=int, default=1,
                        help="minimum sampled rows required (default 1)")
    parser.add_argument("--min-apps", type=int, default=1,
                        help="minimum distinct apps with a sampled row")
    args = parser.parse_args()

    exact = runs_by_cell(load_doc(args.exact))
    sampled_doc = load_doc(args.sampled)

    checked = 0
    fell_back = 0
    failures = []
    apps_sampled = set()
    for r in sampled_doc.get("runs", []):
        key = (r["app"], r["spec"])
        s = r.get("sampling")
        if s is None:
            fell_back += 1
            continue
        base = exact.get(key)
        if base is None:
            fail(f"sampled cell {key} missing from the exact run")
        if s["cpi_mean"] <= 0:
            fail(f"non-positive cpi_mean for {key}")
        # Recover the trace length the estimate was scaled to; +1
        # absorbs the per-component rounding of the estimate.
        n = r["cycles"] / s["cpi_mean"]
        half_width = s["ci95"] * n + 1
        delta = abs(r["cycles"] - base["cycles"])
        status = "ok"
        if delta > half_width:
            status = "OUTSIDE CI"
            failures.append(key)
        else:
            apps_sampled.add(r["app"])
        checked += 1
        print(f"  {key[0]}/{key[1]}: exact {base['cycles']} "
              f"est {r['cycles']} (ci +-{half_width:.0f}) {status}")

    print(f"check_sampling: {checked} sampled row(s) checked "
          f"across {len(apps_sampled)} app(s), {fell_back} exact "
          f"fallback(s), {len(failures)} outside CI")
    if failures:
        print("check_sampling: FAILED — exact mean outside the 95% CI: "
              + ", ".join(f"{a}/{s}" for a, s in failures),
              file=sys.stderr)
        sys.exit(1)
    if checked < args.min_sampled:
        print(f"check_sampling: FAILED — only {checked} sampled "
              f"row(s), need {args.min_sampled}; the smoke did not "
              "exercise sampling", file=sys.stderr)
        sys.exit(1)
    if len(apps_sampled) < args.min_apps:
        print(f"check_sampling: FAILED — only {len(apps_sampled)} "
              f"app(s) contributed sampled rows, need {args.min_apps}",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
