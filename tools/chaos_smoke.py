#!/usr/bin/env python3
"""Multi-process chaos smoke: kill -9 the service, expect identical bits.

Usage:
    chaos_smoke.py --svc BUILD/src/svc/dsmem_svc \\
                   --bench BUILD/bench/bench_figure3 \\
                   --workdir DIR [--workers 2] [--campaign figure3]

Drives the sharded campaign service the way an unlucky operator
experiences it, asserting the at-least-once dispatch contract from
the outside (no test hooks, only public binaries and signals):

  1. reference   -- the in-process bench (`--jobs N --stable-json`)
                    produces the golden JSON export.
  2. clean shard -- `dsmem_svc run` with real worker processes must
                    reproduce the reference byte-for-byte.
  3. worker kill -- re-run with phase-2 slowed by a failpoint delay,
                    SIGKILL worker pids parsed live from the
                    coordinator's "svc: worker N pid P" lines; the
                    run must still exit 0 with identical bytes and
                    report worker_deaths > 0 in --stats-json.
  4. coord kill  -- arm `svc.coord.recv:kill` so the *coordinator*
                    dies mid-campaign (workers never evaluate that
                    site), then `--resume` against the same journal
                    must finish with identical bytes.

Every phase shares one trace cache, so phase-2 timing is recomputed
from the same immutable bundles everywhere and "identical" means
identical, not "statistically close".

Exit codes: 0 ok, 1 contract violation (wrong exit code or byte
diff), 2 usage/setup error.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import threading
import time


def fail(msg):
    print(f"chaos_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def usage_error(msg):
    print(f"chaos_smoke: {msg}", file=sys.stderr)
    sys.exit(2)


def note(msg):
    print(f"chaos_smoke: {msg}", flush=True)


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


WORKER_LINE = re.compile(rb"svc: worker (\d+) pid (\d+)")


def run_logged(cmd, env=None, tag=""):
    """Run to completion, returning (exit_code, stdout, stderr)."""
    note(f"[{tag}] {' '.join(cmd)}")
    proc = subprocess.run(cmd, env=env, capture_output=True)
    return proc.returncode, proc.stdout, proc.stderr


def kill_workers_live(cmd, env, max_kills, tag):
    """Run @cmd, SIGKILL-ing up to @max_kills distinct worker pids as
    the coordinator announces them. Returns (exit_code, kills_sent)."""
    note(f"[{tag}] {' '.join(cmd)}")
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL)
    kills = []
    lock = threading.Lock()

    def assassin(pid):
        # Let the worker get a lease first so a re-dispatch actually
        # happens, instead of killing a process that never ran a cell.
        time.sleep(0.4)
        try:
            os.kill(pid, signal.SIGKILL)
            with lock:
                kills.append(pid)
            note(f"[{tag}] sent SIGKILL to worker pid {pid}")
        except ProcessLookupError:
            pass  # Finished before we got to it; the run stays clean.

    seen = set()
    for line in proc.stdout:
        m = WORKER_LINE.search(line)
        if not m:
            continue
        pid = int(m.group(2))
        if pid in seen or len(seen) >= max_kills:
            continue
        seen.add(pid)
        threading.Thread(target=assassin, args=(pid,),
                         daemon=True).start()
    proc.stdout.close()
    code = proc.wait()
    return code, len(kills)


def main():
    ap = argparse.ArgumentParser(
        description="multi-process chaos smoke for dsmem_svc")
    ap.add_argument("--svc", required=True,
                    help="path to the dsmem_svc binary")
    ap.add_argument("--bench", required=True,
                    help="path to the bench_figure3 binary")
    ap.add_argument("--workdir", required=True,
                    help="scratch directory (created if missing)")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--campaign", default="figure3")
    args = ap.parse_args()

    for exe in (args.svc, args.bench):
        if not os.access(exe, os.X_OK):
            usage_error(f"not an executable: {exe}")
    os.makedirs(args.workdir, exist_ok=True)
    cache = os.path.join(args.workdir, "cache")

    base_env = {k: v for k, v in os.environ.items()
                if k != "DSMEM_FAILPOINTS"}

    def path(name):
        return os.path.join(args.workdir, name)

    # -- 1. reference: in-process bench, golden stable-json bytes. ----
    ref = path("ref.json")
    code, _, err = run_logged(
        [args.bench, "--small", "--jobs", str(args.workers),
         "--trace-dir", cache, "--stable-json", "--json", ref],
        env=base_env, tag="reference")
    if code != 0:
        fail(f"reference bench exited {code}:\n{err.decode()}")
    golden = read_bytes(ref)
    note(f"reference export: {len(golden)} bytes")

    def svc_run(tag, json_name, journal_name, extra=(), env=None,
                live_kills=0):
        cmd = [args.svc, "run", "--campaign", args.campaign,
               "--small", "--workers", str(args.workers),
               "--trace-dir", cache, "--stable-json",
               "--json", path(json_name),
               "--journal", path(journal_name)] + list(extra)
        if live_kills:
            return kill_workers_live(cmd, env or base_env,
                                     live_kills, tag)
        code, _, err = run_logged(cmd, env=env or base_env, tag=tag)
        return code, err

    def expect_golden(json_name, tag):
        got = read_bytes(path(json_name))
        if got != golden:
            fail(f"{tag}: export differs from reference "
                 f"({len(got)} vs {len(golden)} bytes)")
        note(f"[{tag}] export is byte-identical to the reference")

    # -- 2. clean sharded run must match the reference exactly. -------
    code, err = svc_run("clean-shard", "svc_clean.json", "j_clean")
    if code != 0:
        fail(f"clean sharded run exited {code}:\n{err.decode()}")
    expect_golden("svc_clean.json", "clean-shard")

    # -- 3. SIGKILL live workers; dispatch must absorb the deaths. ----
    # The delay failpoint stretches each phase-2 cell so the kills
    # land mid-campaign; workers inherit it via the environment.
    # --stable-json zeroes wall-clock fields, so bytes are unaffected.
    chaos_env = dict(base_env)
    chaos_env["DSMEM_FAILPOINTS"] = "campaign.phase2:delay:100"
    stats = path("stats_kill.json")
    code, kills = svc_run("worker-kill", "svc_kill.json", "j_kill",
                          extra=["--stats-json", stats],
                          env=chaos_env, live_kills=args.workers)
    if code != 0:
        fail(f"worker-kill run exited {code}")
    expect_golden("svc_kill.json", "worker-kill")
    stats_doc = read_bytes(stats).decode()
    m = re.search(r'"worker_deaths":\s*(\d+)', stats_doc)
    deaths = int(m.group(1)) if m else 0
    if kills > 0 and deaths < 1:
        fail(f"sent {kills} SIGKILLs but stats report "
             f"worker_deaths={deaths}:\n{stats_doc}")
    note(f"[worker-kill] {kills} kill(s) sent, "
         f"{deaths} death(s) absorbed")

    # -- 4. SIGKILL the coordinator itself, then --resume. ------------
    coord_env = dict(base_env)
    coord_env["DSMEM_FAILPOINTS"] = "svc.coord.recv:kill:5"
    code, _ = svc_run("coord-kill", "svc_resume.json", "j_resume",
                      env=coord_env)
    if code == 0:
        # The campaign finished before the 5th coordinator receive --
        # possible only if the run degenerated; treat as a miss.
        fail("coordinator survived svc.coord.recv:kill:5; "
             "the kill failpoint never fired")
    note(f"[coord-kill] coordinator died as scheduled (exit {code})")
    code, err = svc_run("coord-resume", "svc_resume.json", "j_resume",
                        extra=["--resume"])
    if code != 0:
        fail(f"resume after coordinator kill exited {code}:\n"
             f"{err.decode()}")
    expect_golden("svc_resume.json", "coord-resume")

    note("OK: all chaos phases reproduced the reference bit-exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
