#!/usr/bin/env python3
"""Perf ratchet: fail when a bench run regresses vs a committed baseline.

Usage:
    check_perf.py BASELINE.json CURRENT.json [--tolerance 0.25]

Compares only *dimensionless* ratios (per-cell view-vs-legacy
speedups, generation speedup, bundle load/size ratios, fused-sweep
speedups), never absolute instructions/second: the committed baseline
and the CI runner are different machines, and a ratio of two
measurements taken in the same process on the same host transfers
across hosts where raw throughput does not.

Three ratchet kinds: floors (ratios where bigger is better — a drop
past tolerance fails), ceilings (errors where smaller is better — a
rise past tolerance fails, e.g. bench_sampling's max_abs_error), and
hard gates (booleans with no tolerance, e.g. bench_sampling's
all_in_ci exact-mean-inside-CI check).

Both files must come from the same bench at the same scale (the
"small" flag must match) — cell mixes and therefore expected ratios
differ between the small and paper-scaled traces.

Exit codes: 0 ok, 1 regression (>tolerance drop in any compared
ratio), 2 usage or file mismatch. CI may skip a known-noisy failure
with the `perf-override` PR label (see .github/workflows/ci.yml).
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_perf: {msg}", file=sys.stderr)
    sys.exit(2)


def load_doc(path):
    """Load one bench JSON document, exiting 2 on a bad file."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def ratios(doc):
    """Extract {name: dimensionless ratio} from one bench JSON."""
    out = {}
    bench = doc.get("bench")
    if bench == "bench_hotloop":
        for cell in doc.get("cells", []):
            out[f"cell:{cell['label']}:speedup"] = cell["speedup"]
        sweep = doc.get("campaign_sweep")
        if sweep:
            out["campaign_sweep:speedup_jobs1"] = sweep["speedup_jobs1"]
            out["campaign_sweep:speedup_jobsN"] = sweep["speedup_jobsN"]
        # schema_version >= 4: fused-vs-per-cell ratio per cache
        # regime (cache_resident = warm campaign sweep at jobs 1,
        # memory_bound = streamed synthetic cells past the LLC). Both
        # ratchet independently — the SoL executor must not buy its
        # memory-bound win by regressing the warm path or vice versa.
        # schema_version >= 5 adds memory_bound_streamed: the same
        # fused sweep against the chunk-compressed resident form;
        # streamed_over_fused ratchets the decode-ahead executor
        # against the flat fused sweep it replaces.
        for name, regime in sorted(doc.get("regimes", {}).items()):
            if "fused_speedup" in regime:
                out[f"regime:{name}:fused_speedup"] = (
                    regime["fused_speedup"])
            if "streamed_over_fused" in regime:
                out[f"regime:{name}:streamed_over_fused"] = (
                    regime["streamed_over_fused"])
    elif bench == "bench_phase1":
        out["gen:speedup"] = doc["gen"]["speedup"]
        out["bundle:size_ratio"] = doc["bundle"]["size_ratio"]
        out["bundle:load_speedup_view_vs_v1"] = (
            doc["bundle"]["load_speedup_view_vs_v1"])
    elif bench == "bench_contention":
        # Deterministic simulation outputs, not wall-clock: these
        # ratios ratchet the *model* — scheduler row-buffer locality
        # and the latency hiding that survives DRAM contention — so
        # any drop is a real semantic regression, never runner noise.
        traces = doc.get("traces", [])
        runs = doc.get("runs", [])

        def unit_label(trace):
            dram = trace.get("dram")
            if dram is None:
                return "paper"
            return f"{dram['sched']}@{dram['banks']}b"

        for t in traces:
            dram = t.get("dram")
            if dram and dram.get("requests"):
                out[f"dram:{t['app']}:{unit_label(t)}:row_hit_frac"] = (
                    dram["row_hits"] / dram["requests"])
        # Runs arrive in campaign-unit order, a fixed number per unit
        # (BASE + one row per window); attribute each to its trace to
        # recover the memory-config label, and keep the paper's
        # canonical W=64 point as the ratcheted hidden-read fraction.
        if traces and runs and len(runs) % len(traces) == 0:
            per_unit = len(runs) // len(traces)
            for i, r in enumerate(runs):
                if r["spec"] != "RC DS-64":
                    continue
                t = traces[i // per_unit]
                out[f"hidden:{r['app']}:{unit_label(t)}:W64"] = (
                    r["hidden_read"])
    elif bench == "bench_sampling":
        out["min_speedup"] = doc["min_speedup"]
        for cell in doc.get("cells", []):
            out[f"cell:{cell['label']}:speedup"] = cell["speedup"]
    else:
        fail(f"unknown bench {bench!r}")
    return out


def ceilings(doc):
    """Extract {name: value} metrics where *smaller* is better.

    These ratchet the opposite direction from ratios(): the current
    run regresses when a value exceeds baseline * (1 + tolerance).
    Sampling errors are deterministic simulation outputs (seeded trace,
    seeded plan), so a ceiling breach is a real estimator regression,
    never timing noise.
    """
    out = {}
    if doc.get("bench") == "bench_sampling":
        out["max_abs_error"] = doc["max_abs_error"]
        for cell in doc.get("cells", []):
            out[f"cell:{cell['label']}:abs_error"] = cell["abs_error"]
    elif doc.get("bench") == "bench_hotloop":
        # Memory ratchets for the chunk-compressed streamed regime
        # (schema_version >= 5), both dimensionless so they transfer
        # across hosts. resident_ratio (chunked resident bytes over
        # flat SoA bytes) is a deterministic property of the encoder;
        # the worker-RSS fraction comes from the --rss-probe child
        # processes and is skipped when the probe could not run.
        regimes = doc.get("regimes", {})
        streamed = regimes.get("memory_bound_streamed")
        if streamed and streamed.get("flat_bytes"):
            out["regime:memory_bound_streamed:resident_ratio"] = (
                streamed["resident_ratio"])
        rss = regimes.get("worker_rss")
        if rss and rss.get("flat_peak_rss_bytes") and \
                rss.get("streamed_peak_rss_bytes"):
            out["worker_rss:streamed_fraction"] = (
                rss["streamed_peak_rss_bytes"]
                / rss["flat_peak_rss_bytes"])
    return out


def gates(doc):
    """Extract {name: bool} hard pass/fail gates (no tolerance)."""
    out = {}
    if doc.get("bench") == "bench_sampling":
        out["all_in_ci"] = doc["all_in_ci"]
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop (default 0.25)")
    args = parser.parse_args()

    base = load_doc(args.baseline)
    cur = load_doc(args.current)

    if base.get("bench") != cur.get("bench"):
        fail(f"bench mismatch: {base.get('bench')} vs {cur.get('bench')}")
    if base.get("small") != cur.get("small"):
        fail("scale mismatch: baseline and current disagree on --small; "
             "ratios are only comparable at the same trace scale")

    base_r = ratios(base)
    cur_r = ratios(cur)

    regressions = []
    compared = 0
    for name, want in sorted(base_r.items()):
        have = cur_r.get(name)
        if have is None:
            # A removed cell is a bench-definition change, not a perf
            # regression; the test suite owns result correctness.
            print(f"check_perf: note: {name} absent in current run")
            continue
        compared += 1
        floor = want * (1.0 - args.tolerance)
        status = "ok"
        if have < floor:
            status = "REGRESSION"
            regressions.append(name)
        print(f"  {name}: baseline {want:.3f} current {have:.3f} "
              f"(floor {floor:.3f}) {status}")

    for name, want in sorted(ceilings(base).items()):
        have = ceilings(cur).get(name)
        if have is None:
            print(f"check_perf: note: {name} absent in current run")
            continue
        compared += 1
        ceiling = want * (1.0 + args.tolerance)
        status = "ok"
        if have > ceiling:
            status = "REGRESSION"
            regressions.append(name)
        print(f"  {name}: baseline {want:.5f} current {have:.5f} "
              f"(ceiling {ceiling:.5f}) {status}")

    for name, ok in sorted(gates(cur).items()):
        compared += 1
        if not ok:
            regressions.append(name)
        print(f"  {name}: {'ok' if ok else 'REGRESSION'}")

    print(f"check_perf: compared {compared} ratio(s), "
          f"{len(regressions)} regression(s), "
          f"tolerance {args.tolerance:.0%}")
    if regressions:
        print("check_perf: FAILED — regressed ratios: "
              + ", ".join(regressions), file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
